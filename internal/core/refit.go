package core

import (
	"fmt"
	"math"
	"sort"
)

// This file implements incremental refit: a ModelSet that carries its own
// training samples, partitioned into the paper's (class, M) bins, can absorb
// a batch of new measurements by refitting only the touched bins instead of
// rebuilding every model. The contract — property-tested — is that the
// incremental result is bit-identical to a from-scratch Build over the
// store's concatenated samples followed by the recorded composition and
// adjustment steps (RebuildFromBins). That invariant is what lets the
// serving layer re-key cached evaluators across a refit instead of
// recompiling them: an unchanged bin provably yields unchanged tables.
//
// Bit-identity holds because every fitting step reads a deterministic
// subsequence of the store: FitNT and FitPT consume only their own bin's
// samples in arrival order, composition and adjustment are deterministic
// functions of the fitted models and the calibration set. Refitting a touched
// bin from its full (old + delta) sample slice therefore reproduces exactly
// what the full rebuild computes for that bin, while untouched bins keep
// their existing model pointers untouched.

// StoredSample is the persisted and wire form of one training sample: the
// fields the fitting pipeline actually reads (Config and Wall are
// provenance, never regressors). It is the element type of the model file's
// "bins"/"calibration" sections and of the serving layer's /v1/refit batch.
type StoredSample struct {
	Class int     `json:"class"`
	P     int     `json:"p"`
	M     int     `json:"m"`
	N     int     `json:"n"`
	Ta    float64 `json:"ta"`
	Tc    float64 `json:"tc"`
}

// Sample widens the stored form back into a training sample.
func (s StoredSample) Sample() Sample {
	return Sample{N: s.N, P: s.P, Class: s.Class, M: s.M, Ta: s.Ta, Tc: s.Tc}
}

// stripSample reduces a sample to the fields fitting reads, so in-memory bin
// stores and ones reloaded from a model file behave identically.
func stripSample(s Sample) Sample {
	return Sample{N: s.N, P: s.P, Class: s.Class, M: s.M, Ta: s.Ta, Tc: s.Tc}
}

// SampleDelta is one refit batch: new (or corrected) training samples plus
// optional §4.1 calibration samples. Within a (class, M) bin a delta sample
// replaces the stored sample with the same (P, N) — the latest measurement
// of a configuration wins — and appends otherwise.
type SampleDelta struct {
	Samples     []Sample
	Calibration []Sample
}

// BinStore holds a ModelSet's training samples partitioned into the paper's
// (class, M) bins, each in arrival order, plus the adjustment calibration
// set. It is the durable input of incremental refit: persisting it alongside
// the fitted models makes any model file rebuildable and refittable.
type BinStore struct {
	bins  map[PTKey][]Sample
	calib []Sample
}

// NewBinStore builds a store from initial training and calibration samples,
// applying the same latest-wins placement Refit uses for deltas.
func NewBinStore(samples, calibration []Sample) *BinStore {
	b := &BinStore{bins: make(map[PTKey][]Sample)}
	for _, s := range samples {
		s = stripSample(s)
		key := PTKey{Class: s.Class, M: s.M}
		b.bins[key], _ = placeSample(b.bins[key], s)
	}
	for _, s := range calibration {
		b.calib, _ = placeCalib(b.calib, stripSample(s))
	}
	return b
}

// placeSample inserts s into a bin slice with latest-wins semantics: a stored
// sample with the same (P, N) is overwritten in place (keeping its arrival
// position, so refit and rebuild see the same order), otherwise s appends.
func placeSample(bin []Sample, s Sample) (out []Sample, replaced bool) {
	for i := range bin {
		if bin[i].P == s.P && bin[i].N == s.N {
			bin[i] = s
			return bin, true
		}
	}
	return append(bin, s), false
}

// placeCalib is placeSample for the calibration set, which spans bins and so
// matches on (Class, M, P, N).
func placeCalib(calib []Sample, s Sample) (out []Sample, replaced bool) {
	for i := range calib {
		if calib[i].Class == s.Class && calib[i].M == s.M && calib[i].P == s.P && calib[i].N == s.N {
			calib[i] = s
			return calib, true
		}
	}
	return append(calib, s), false
}

// Len returns the number of stored training samples (calibration excluded).
func (b *BinStore) Len() int {
	n := 0
	for _, bin := range b.bins {
		n += len(bin)
	}
	return n
}

// Keys returns the populated (class, M) bins in deterministic order.
func (b *BinStore) Keys() []PTKey {
	out := make([]PTKey, 0, len(b.bins))
	for k := range b.bins {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return ptKeyLess(out[i], out[j]) })
	return out
}

// Samples returns one bin's samples in arrival order. The slice is shared;
// callers must not mutate it.
func (b *BinStore) Samples(key PTKey) []Sample { return b.bins[key] }

// Calibration returns the calibration set in arrival order. The slice is
// shared; callers must not mutate it.
func (b *BinStore) Calibration() []Sample { return b.calib }

// Flatten returns the store's canonical concatenated sample set: bins in
// sorted (class, M) order, arrival order within each bin. Build over this
// slice is the reference every incremental refit must reproduce — each
// fitting step reads only per-bin subsequences, which Flatten preserves.
func (b *BinStore) Flatten() []Sample {
	out := make([]Sample, 0, b.Len())
	for _, k := range b.Keys() {
		out = append(out, b.bins[k]...)
	}
	return out
}

// withDelta returns a new store with the delta applied, sharing the slices
// of untouched bins with the receiver (copy-on-write: the receiver is never
// mutated, so a failed refit leaves the published model's store intact). The
// report's Appended/Replaced/Touched fields are filled; Changed is the
// caller's job.
func (b *BinStore) withDelta(delta SampleDelta, classes int) (*BinStore, *RefitReport, error) {
	next := &BinStore{bins: make(map[PTKey][]Sample, len(b.bins)), calib: b.calib}
	for k, bin := range b.bins {
		next.bins[k] = bin
	}
	rep := &RefitReport{}
	touched := make(map[PTKey]bool)
	for _, s := range delta.Samples {
		s = stripSample(s)
		if err := checkSample(s, classes); err != nil {
			return nil, nil, err
		}
		key := PTKey{Class: s.Class, M: s.M}
		if !touched[key] {
			touched[key] = true
			next.bins[key] = append([]Sample(nil), next.bins[key]...)
		}
		var replaced bool
		next.bins[key], replaced = placeSample(next.bins[key], s)
		if replaced {
			rep.Replaced++
		} else {
			rep.Appended++
		}
	}
	if len(delta.Calibration) > 0 {
		next.calib = append([]Sample(nil), b.calib...)
		for _, s := range delta.Calibration {
			s = stripSample(s)
			if err := checkSample(s, classes); err != nil {
				return nil, nil, err
			}
			var replaced bool
			next.calib, replaced = placeCalib(next.calib, s)
			if replaced {
				rep.CalibReplaced++
			} else {
				rep.CalibAppended++
			}
		}
	}
	rep.Touched = make([]PTKey, 0, len(touched))
	for k := range touched {
		rep.Touched = append(rep.Touched, k)
	}
	sortPTKeys(rep.Touched)
	return next, rep, nil
}

// MergeDelta returns a new store with the delta folded in, without any
// refitting: pure bin bookkeeping (append or latest-wins replace), receiver
// untouched. It exists for reference paths that want the merged sample set
// but fit from scratch — modelfit's -rebuild mode uses it so the refit
// parity gate's reference side shares no fitting shortcut with Refit.
func (b *BinStore) MergeDelta(delta SampleDelta, classes int) (*BinStore, *RefitReport, error) {
	return b.withDelta(delta, classes)
}

// checkSample rejects delta samples the fitting pipeline cannot digest.
func checkSample(s Sample, classes int) error {
	if s.Class < 0 || s.Class >= classes {
		return fmt.Errorf("%w: sample class %d outside %d classes", ErrBadSamples, s.Class, classes)
	}
	if s.M < 1 || s.N < 1 || s.P < s.M {
		return fmt.Errorf("%w: sample (class %d, P %d, M %d, N %d)", ErrBadSamples, s.Class, s.P, s.M, s.N)
	}
	if !isFinite(s.Ta) || !isFinite(s.Tc) {
		return fmt.Errorf("%w: non-finite times in sample (class %d, P %d, M %d, N %d)", ErrBadSamples, s.Class, s.P, s.M, s.N)
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// RefitReport is the changed-bin report of one Refit: what the delta did to
// the store and which evaluator-visible tables differ as a result. The
// serving layer keys its cache invalidation off Changed and AdjustChanged —
// everything else is observability.
type RefitReport struct {
	// Appended and Replaced count delta training samples that extended a
	// bin vs overwrote a stored (P, N) measurement; CalibAppended and
	// CalibReplaced are the same for the calibration set.
	Appended      int `json:"appended"`
	Replaced      int `json:"replaced"`
	CalibAppended int `json:"calibAppended,omitempty"`
	CalibReplaced int `json:"calibReplaced,omitempty"`
	// Touched lists the (class, M) bins that received delta samples.
	Touched []PTKey `json:"touched"`
	// Changed lists the (class, M) bins whose evaluator-visible tables —
	// the single-PE N-T model (P = M) or the P-T model — differ from the
	// pre-refit model, bitwise. Composition can change bins far from the
	// touched ones (a composed class mirrors its source), which is why this
	// is computed by comparison, not dependency tracking.
	Changed []PTKey `json:"changed"`
	// AdjustChanged lists the classes whose §4.1 adjustment transform
	// differs after the calibration refit.
	AdjustChanged []int `json:"adjustChanged,omitempty"`
}

// Refit applies a sample delta incrementally: it extends the bin store
// (copy-on-write), refits the N-T and P-T models of the touched bins only,
// replays the recorded composition recipes, refits the §4.1 adjustment from
// the union calibration set, and reports which (class, M) tables changed.
// The receiver is never mutated — Refit returns a new ModelSet sharing every
// untouched model pointer, which is what makes it cheap: cost scales with
// the touched bins, not the model.
//
// The result is bit-identical to RebuildFromBins on the returned set's bins
// (property-tested), provided the receiver itself satisfies that invariant —
// true for any model built by BuildModels/BuildModel or loaded from a file
// they wrote, and preserved by Refit itself.
func (ms *ModelSet) Refit(delta SampleDelta) (*ModelSet, *RefitReport, error) {
	if ms.Bins == nil {
		return nil, nil, fmt.Errorf("%w: model set carries no sample bins (refit needs a model written with them)", ErrNoModel)
	}
	if len(delta.Samples) == 0 && len(delta.Calibration) == 0 {
		return nil, nil, fmt.Errorf("%w: empty refit delta", ErrBadSamples)
	}
	bins, report, err := ms.Bins.withDelta(delta, ms.Classes)
	if err != nil {
		return nil, nil, err
	}
	next := &ModelSet{
		Classes:      ms.Classes,
		NT:           make(map[Key]*NTModel, len(ms.NT)),
		PT:           make(map[PTKey]*PTModel, len(ms.PT)),
		AdjustMinM:   ms.AdjustMinM,
		Memory:       ms.Memory,
		Bins:         bins,
		Compositions: append([]Composition(nil), ms.Compositions...),
	}
	for k, m := range ms.NT {
		next.NT[k] = m
	}
	for k, m := range ms.PT {
		next.PT[k] = m
	}
	for _, bin := range report.Touched {
		if err := next.refitBin(bin); err != nil {
			return nil, nil, err
		}
	}
	if err := next.replayCompositions(); err != nil {
		return nil, nil, err
	}
	if err := next.FitAdjustment(bins.calib); err != nil {
		return nil, nil, err
	}
	report.Changed, report.AdjustChanged = diffModels(ms, next)
	return next, report, nil
}

// refitBin refits one (class, M) bin from its full sample slice, mirroring
// exactly what a from-scratch Build computes for it: per-configuration N-T
// fits over groups with enough sizes (FitAllNT skips thin groups), then the
// bin's P-T fit — deleted when unfittable, because FitAllPT skips such bins
// and the composition replay may refill them.
func (ms *ModelSet) refitBin(bin PTKey) error {
	samples := ms.Bins.bins[bin]
	groups := GroupByKey(samples)
	keys := make([]Key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.M < b.M
	})
	for _, k := range keys {
		group := groups[k]
		if len(group) < len(taDegrees) {
			delete(ms.NT, k)
			continue
		}
		m, err := FitNT(group)
		if err != nil {
			return err
		}
		ms.NT[k] = m
	}
	if pt, err := FitPT(ms.NT, samples, bin); err == nil {
		ms.PT[bin] = pt
	} else {
		delete(ms.PT, bin)
	}
	return nil
}

// RebuildFromBins is the reference path incremental refit must match: a
// from-scratch Build over the store's concatenated samples, the recorded
// composition recipes replayed, and the adjustment refit from the stored
// calibration set. It is also the offline rebuild tool behind the serving
// layer's refit-parity CI gate (modelfit -rebuild).
func (ms *ModelSet) RebuildFromBins() (*ModelSet, error) {
	if ms.Bins == nil {
		return nil, fmt.Errorf("%w: model set carries no sample bins", ErrNoModel)
	}
	next, err := Build(ms.Classes, ms.Bins.Flatten())
	if err != nil {
		return nil, err
	}
	next.AdjustMinM = ms.AdjustMinM
	next.Memory = ms.Memory
	next.Bins = ms.Bins
	next.Compositions = append([]Composition(nil), ms.Compositions...)
	if err := next.replayCompositions(); err != nil {
		return nil, err
	}
	if err := next.FitAdjustment(ms.Bins.calib); err != nil {
		return nil, err
	}
	return next, nil
}

// diffModels compares the evaluator-visible state of two model sets: per
// (class, M) bin the single-PE N-T model and the P-T model, and per class
// the adjustment transform. Floats are compared bitwise — the refit
// invariant is bit-identity, so a single changed ULP is a changed bin.
func diffModels(old, next *ModelSet) (changed []PTKey, adjChanged []int) {
	bins := make(map[PTKey]bool)
	collectVisibleBins(old, bins)
	collectVisibleBins(next, bins)
	all := make([]PTKey, 0, len(bins))
	for k := range bins {
		all = append(all, k)
	}
	sort.Slice(all, func(i, j int) bool { return ptKeyLess(all[i], all[j]) })
	for _, bin := range all {
		diag := Key{Class: bin.Class, P: bin.M, M: bin.M}
		if !sameNT(old.NT[diag], next.NT[diag]) || !samePT(old.PT[bin], next.PT[bin]) {
			changed = append(changed, bin)
		}
	}
	classes := old.Classes
	if next.Classes > classes {
		classes = next.Classes
	}
	for class := 0; class < classes; class++ {
		a, b := old.Adjust[class], next.Adjust[class]
		switch {
		case a == nil && b == nil:
		case a == nil || b == nil,
			!sameFloat(a.A, b.A) || !sameFloat(a.B, b.B):
			adjChanged = append(adjChanged, class)
		}
	}
	return changed, adjChanged
}

// collectVisibleBins adds every (class, M) bin an evaluator of ms can read:
// bins with a P-T model and bins with a single-PE (P = M) N-T model.
func collectVisibleBins(ms *ModelSet, into map[PTKey]bool) {
	for k := range ms.NT {
		if k.P == k.M {
			into[PTKey{Class: k.Class, M: k.M}] = true
		}
	}
	for k := range ms.PT {
		into[k] = true
	}
}

func sameNT(a, b *NTModel) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	return a.Key == b.Key && sameFloats(a.TaCoeff, b.TaCoeff) && sameFloats(a.TcCoeff, b.TcCoeff)
}

func samePT(a, b *PTModel) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	return a.Key == b.Key &&
		sameFloats(a.KaCoeff, b.KaCoeff) && sameFloats(a.KcCoeff, b.KcCoeff) &&
		sameFloats(a.RaCoeff, b.RaCoeff) && sameFloats(a.RcCoeff, b.RcCoeff) &&
		sameInts(a.Ps, b.Ps) &&
		sameFloat(a.TaScale, b.TaScale) && sameFloat(a.TcScale, b.TcScale) &&
		a.Composed == b.Composed
}

// sameFloat compares bitwise: bit-identity is the refit invariant, and the
// serialized model must stay byte-stable, so -0 vs +0 (or differing NaN
// payloads) count as a change.
func sameFloat(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameFloat(a[i], b[i]) {
			return false
		}
	}
	return true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortPTKeys orders (class, M) bins deterministically (class, then M).
func sortPTKeys(keys []PTKey) {
	sort.Slice(keys, func(i, j int) bool { return ptKeyLess(keys[i], keys[j]) })
}

// ptKeyLess is the canonical (class, then M) bin order.
func ptKeyLess(a, b PTKey) bool {
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.M < b.M
}
