package core

import (
	"math"
	"testing"

	"hetmodel/internal/cluster"
	"hetmodel/internal/simnet"
)

func TestMemoryGuardExcludes(t *testing.T) {
	ms, _ := Build(2, twoClassWorld())
	ms.ComposeClass(0, 1, 0.25, 0.85)
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{}, {PEs: 8, Procs: 1}}}

	// Guard that excludes everything above N = 5000.
	ms.Memory = func(c cluster.Configuration, n float64) float64 {
		if n > 5000 {
			return math.Inf(1)
		}
		return 1
	}
	est, err := ms.Estimate(cfg, 3200)
	if err != nil || math.IsInf(est, 0) {
		t.Fatalf("in-memory config excluded: %v %v", est, err)
	}
	est, err = ms.Estimate(cfg, 6400)
	if err != nil || !math.IsInf(est, 1) {
		t.Fatalf("over-memory config not excluded: %v %v", est, err)
	}
	// The optimizer must never pick an excluded configuration.
	cands := []cluster.Configuration{cfg}
	if _, _, err := ms.Optimize(cands, 6400); err == nil {
		t.Fatal("optimizer picked an excluded configuration")
	}
	best, _, err := ms.Optimize(cands, 3200)
	if err != nil || best.Key() != cfg.Key() {
		t.Fatalf("optimizer failed below the wall: %v %v", best, err)
	}
}

func TestClusterMemoryGuardPredicts(t *testing.T) {
	cl := paperClusterForCore(t)
	guard := cl.MemoryGuard(func(n float64) float64 { return 24 << 20 })
	lone := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {}}}
	// 8·9600² = 703 MiB + 24 MiB fits in 768 MiB...
	if guard(lone, 9600) != 1 {
		t.Fatal("N=9600 should fit the lone Athlon")
	}
	// ...while 8·10000² = 763 MiB + 24 MiB does not.
	if !math.IsInf(guard(lone, 10000), 1) {
		t.Fatal("N=10000 should exceed the lone Athlon's memory")
	}
	// Spreading over nine PEs fits easily.
	all := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {PEs: 8, Procs: 1}}}
	if guard(all, 10000) != 1 {
		t.Fatal("N=10000 should fit across nine PEs")
	}
	// Unplaceable configurations are excluded.
	tooMany := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 5, Procs: 1}, {}}}
	if !math.IsInf(guard(tooMany, 1000), 1) {
		t.Fatal("unplaceable configuration not excluded")
	}
	// A nil extra function is allowed.
	bare := cl.MemoryGuard(nil)
	if bare(lone, 9600) != 1 {
		t.Fatal("nil-extra guard broken")
	}
}

// paperClusterForCore builds the paper cluster without importing the
// experiments package (which would create an import cycle in tests).
func paperClusterForCore(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.NewPaper(simnet.NewMPICH122())
	if err != nil {
		t.Fatal(err)
	}
	return cl
}
