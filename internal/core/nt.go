package core

import (
	"fmt"

	"hetmodel/internal/lsq"
)

// taDegrees and tcDegrees are the polynomial bases of the paper's §3.2:
// Ta is cubic (the update term dominates, O(N³)), Tc quadratic (broadcast
// and row swaps, O(N²)).
var (
	taDegrees = []int{3, 2, 1, 0}
	tcDegrees = []int{2, 1, 0}
)

// NTModel is the paper's N-T model: execution-time polynomials in N for one
// fixed configuration (PE class, total processes P, processes-per-PE M).
type NTModel struct {
	Key Key
	// TaCoeff are k0..k3 of Ta(N) = k0·N³ + k1·N² + k2·N + k3.
	TaCoeff []float64
	// TcCoeff are k4..k6 of Tc(N) = k4·N² + k5·N + k6.
	TcCoeff []float64
	// Ns are the problem sizes the model was fit on.
	Ns []float64
	// TaR2 and TcR2 are the fits' coefficients of determination.
	TaR2, TcR2 float64
}

// FitNT extracts an N-T model from samples that must all share one
// configuration bin. The paper requires at least four distinct N (Ta has
// four coefficients).
func FitNT(samples []Sample) (*NTModel, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("%w: no samples", ErrBadSamples)
	}
	key := Key{Class: samples[0].Class, P: samples[0].P, M: samples[0].M}
	seen := map[int]bool{}
	var ns, tas, tcs []float64
	for _, s := range samples {
		k := Key{Class: s.Class, P: s.P, M: s.M}
		if k != key {
			return nil, fmt.Errorf("%w: mixed bins %v and %v", ErrBadSamples, key, k)
		}
		if seen[s.N] {
			return nil, fmt.Errorf("%w: duplicate N=%d in bin %v", ErrBadSamples, s.N, key)
		}
		seen[s.N] = true
		ns = append(ns, float64(s.N))
		tas = append(tas, s.Ta)
		tcs = append(tcs, s.Tc)
	}
	if len(ns) < len(taDegrees) {
		return nil, fmt.Errorf("%w: bin %v has %d sizes, need >= %d", ErrBadSamples, key, len(ns), len(taDegrees))
	}
	taFit, err := lsq.FitPolynomial(ns, tas, taDegrees)
	if err != nil {
		return nil, fmt.Errorf("core: Ta fit for %v: %w", key, err)
	}
	tcFit, err := lsq.FitPolynomial(ns, tcs, tcDegrees)
	if err != nil {
		return nil, fmt.Errorf("core: Tc fit for %v: %w", key, err)
	}
	return &NTModel{
		Key:     key,
		TaCoeff: taFit.Coeff,
		TcCoeff: tcFit.Coeff,
		Ns:      ns,
		TaR2:    taFit.RSquared,
		TcR2:    tcFit.RSquared,
	}, nil
}

// Ta evaluates the computation-time polynomial at problem size n.
func (m *NTModel) Ta(n float64) float64 { return lsq.EvalPolynomial(m.TaCoeff, taDegrees, n) }

// Tc evaluates the communication-time polynomial at problem size n.
func (m *NTModel) Tc(n float64) float64 { return lsq.EvalPolynomial(m.TcCoeff, tcDegrees, n) }

// Estimate returns Ta + Tc at problem size n.
func (m *NTModel) Estimate(n float64) float64 { return m.Ta(n) + m.Tc(n) }

// FitAllNT fits one N-T model per configuration bin found in samples,
// skipping bins with too few sizes. It returns the models keyed by bin.
func FitAllNT(samples []Sample) (map[Key]*NTModel, error) {
	groups := GroupByKey(samples)
	out := make(map[Key]*NTModel, len(groups))
	for key, group := range groups {
		if len(group) < len(taDegrees) {
			continue
		}
		m, err := FitNT(group)
		if err != nil {
			return nil, err
		}
		out[key] = m
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no bin has enough sizes", ErrBadSamples)
	}
	return out, nil
}
