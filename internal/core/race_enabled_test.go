//go:build race

package core

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so alloc assertions are skipped.
const raceEnabled = true
