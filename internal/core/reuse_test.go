package core

import (
	"math/rand"
	"testing"

	"hetmodel/internal/cluster"
)

// TestSearchReuseMatchesSearch drives one Reusable through a shuffled mix of
// options — plain, constrained, filtered, ranged, unpruned, varying k, and
// across two evaluators and two grids — checking every answer bit-identical
// to a fresh sequential Search. The buffer recycling must be invisible.
func TestSearchReuseMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	ms := multiClassWorld(t, 3)
	evs := []*Evaluator{ms.Compile(2400), ms.Compile(3200)}
	gridA, err := multiClassSpace(3).Compile()
	if err != nil {
		t.Fatal(err)
	}
	smallSpace := multiClassSpace(3)
	smallSpace.PEChoices[2] = []int{0, 2}
	gridB, err := smallSpace.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cons := &Constraints{MaxTotalProcs: 14, MaxBytesPerPE: 8 * 2400 * 2400 * 1.5}
	evenOnly := func(cfg cluster.Configuration) bool {
		p := 0
		for _, u := range cfg.Use {
			p += u.PEs * u.Procs
		}
		return p%2 == 0
	}
	var r Reusable
	for trial := 0; trial < 60; trial++ {
		ev := evs[rng.Intn(2)]
		grid := gridA
		if rng.Intn(4) == 0 {
			grid = gridB
		}
		opts := SearchOptions{TopK: 1 + rng.Intn(6), NoPrune: rng.Intn(3) == 0}
		if rng.Intn(2) == 0 {
			opts.Constraints = cons
		}
		if rng.Intn(3) == 0 {
			opts.Filter = evenOnly
		}
		if rng.Intn(3) == 0 {
			lo := rng.Int63n(grid.Size())
			opts.Range = &IndexRange{Lo: lo, Hi: lo + rng.Int63n(grid.Size()-lo)}
		}
		sopts := opts
		sopts.Workers = 1
		want, wantErr := ev.Search(grid, sopts)
		got, err := ev.SearchReuse(grid, opts, &r)
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("trial %d opts=%+v: reuse err %v, search err %v", trial, opts, err, wantErr)
		}
		if err != nil {
			continue
		}
		if rankedJSON(t, got.Best, got.BestIndex) != rankedJSON(t, want.Best, want.BestIndex) {
			t.Fatalf("trial %d opts=%+v:\n got %s\nwant %s", trial, opts,
				rankedJSON(t, got.Best, got.BestIndex), rankedJSON(t, want.Best, want.BestIndex))
		}
		if got.Size != want.Size || got.Scored != want.Scored || got.Pruned != want.Pruned {
			t.Fatalf("trial %d opts=%+v: accounting (%d,%d,%d) vs (%d,%d,%d)", trial, opts,
				got.Size, got.Scored, got.Pruned, want.Size, want.Scored, want.Pruned)
		}
	}
}

// TestSearchReusePlanTracksEvaluator pins the plan-cache key: the same
// Reusable and Constraints at a different compiled size must not reuse the
// stale memory-exclusion plan.
func TestSearchReusePlanTracksEvaluator(t *testing.T) {
	ms := multiClassWorld(t, 2)
	grid, err := multiClassSpace(2).Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Cap sized so it binds at n=3200 but not at n=1600 (demand scales as n²).
	cons := &Constraints{MaxBytesPerPE: 8 * 2400 * 2400 * 1.2}
	var r Reusable
	for _, n := range []float64{1600, 3200, 1600} {
		ev := ms.Compile(n)
		want, err := ev.Search(grid, SearchOptions{Workers: 1, TopK: 3, Constraints: cons})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ev.SearchReuse(grid, SearchOptions{TopK: 3, Constraints: cons}, &r)
		if err != nil {
			t.Fatal(err)
		}
		if rankedJSON(t, got.Best, got.BestIndex) != rankedJSON(t, want.Best, want.BestIndex) {
			t.Fatalf("n=%v: reused plan diverged\n got %s\nwant %s", n,
				rankedJSON(t, got.Best, got.BestIndex), rankedJSON(t, want.Best, want.BestIndex))
		}
		if got.Scored != want.Scored || got.Pruned != want.Pruned {
			t.Fatalf("n=%v: accounting (%d,%d) vs (%d,%d)", n, got.Scored, got.Pruned, want.Scored, want.Pruned)
		}
	}
}

// TestSearchReuseSteadyStateAllocs pins the zero-allocation contract of the
// hot serving loop: after the first call warms the buffers, repeated
// searches — constrained and not — allocate nothing.
func TestSearchReuseSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	ms := multiClassWorld(t, 3)
	ev := ms.Compile(2400)
	grid, err := multiClassSpace(3).Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, cons := range []*Constraints{nil, {Classes: []int{0, 1}, MaxTotalProcs: 16}} {
		var r Reusable
		opts := SearchOptions{TopK: 8, Constraints: cons}
		if _, err := ev.SearchReuse(grid, opts, &r); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := ev.SearchReuse(grid, opts, &r); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("cons=%+v: steady-state SearchReuse allocates %v per run", cons, allocs)
		}
	}
}
