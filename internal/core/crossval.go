package core

import (
	"fmt"
	"sort"

	"hetmodel/internal/stats"
)

// CVResult summarizes a leave-one-out cross-validation of one N-T bin: each
// measured size is held out in turn, the model refit on the rest, and the
// held-out prediction compared to the measurement.
type CVResult struct {
	Key Key
	// HeldOut lists the held-out sizes (ascending).
	HeldOut []int
	// TaErr and TcErr are the relative prediction errors per held-out size.
	TaErr, TcErr []float64
	// MaxAbsTaErr is the worst |Ta error| — the a-priori extrapolation
	// risk signal the paper lacked when it trusted the NS model. Small
	// held-out runs are noise-dominated, so the worst error is usually a
	// sub-second run; MedianAbsTaErr summarizes the typical bin quality.
	MaxAbsTaErr float64
	// MedianAbsTaErr is the median |Ta error| over the held-out sizes.
	MedianAbsTaErr float64
}

// CrossValidateNT performs leave-one-out cross-validation of every N-T bin
// that has at least one more size than the fit needs (bins at the minimum
// cannot be refit with a point removed and are skipped — which is itself
// the warning: zero-DoF bins are unvalidatable).
func CrossValidateNT(samples []Sample) ([]CVResult, error) {
	groups := GroupByKey(samples)
	keys := make([]Key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.M < b.M
	})
	var out []CVResult
	for _, key := range keys {
		group := groups[key]
		if len(group) <= len(taDegrees) {
			continue
		}
		sort.Slice(group, func(i, j int) bool { return group[i].N < group[j].N })
		res := CVResult{Key: key}
		for hold := range group {
			train := make([]Sample, 0, len(group)-1)
			for i, s := range group {
				if i != hold {
					train = append(train, s)
				}
			}
			m, err := FitNT(train)
			if err != nil {
				return nil, fmt.Errorf("core: cross-validation refit for %v: %w", key, err)
			}
			held := group[hold]
			res.HeldOut = append(res.HeldOut, held.N)
			taErr := stats.RelError(m.Ta(float64(held.N)), held.Ta)
			res.TaErr = append(res.TaErr, taErr)
			res.TcErr = append(res.TcErr, stats.RelError(m.Tc(float64(held.N)), held.Tc))
			if a := abs(taErr); a > res.MaxAbsTaErr {
				res.MaxAbsTaErr = a
			}
		}
		absErrs := make([]float64, len(res.TaErr))
		for i, e := range res.TaErr {
			absErrs[i] = abs(e)
		}
		if med, err := stats.Median(absErrs); err == nil {
			res.MedianAbsTaErr = med
		}
		out = append(out, res)
	}
	return out, nil
}

// MedianCVError returns the largest per-bin median |Ta error| (0 when
// nothing was validatable) — a noise-robust counterpart of WorstCVError.
func MedianCVError(results []CVResult) float64 {
	worst := 0.0
	for _, r := range results {
		if r.MedianAbsTaErr > worst {
			worst = r.MedianAbsTaErr
		}
	}
	return worst
}

// WorstCVError returns the largest held-out |Ta error| across all bins
// (0 when nothing was validatable).
func WorstCVError(results []CVResult) float64 {
	worst := 0.0
	for _, r := range results {
		if r.MaxAbsTaErr > worst {
			worst = r.MaxAbsTaErr
		}
	}
	return worst
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
