package core

import (
	"fmt"

	"hetmodel/internal/cluster"
)

// Constraints are the structured candidate restrictions the search kernel
// understands natively. The serving layer's query constraints — PE-class
// subsets, total-process caps, per-PE memory bounds — used to reach the
// search only as an opaque Filter closure, which forced every candidate to
// be decoded and visited before rejection. Expressed structurally, the
// walker compiles them into per-(class, pair) exclusion masks and
// prefix/suffix cap checks that zero whole subtrees without visiting them.
//
// Semantics are defined by FilterFunc: a structurally constrained search
// returns bit-identical Best/BestIndex/Size to an unconstrained search over
// the same grid with the equivalent filter closure (the constraints
// property tests pin this). Only the Scored/Pruned split differs:
// structurally excluded candidates count as pruned (skipped wholesale), not
// scored.
type Constraints struct {
	// Classes lists the PE classes a candidate may use (nil or empty allows
	// all); a configuration using any PE of another class is excluded.
	Classes []int
	// MaxTotalProcs caps the total process count P = Σ Pi·Mi (0 = no cap).
	MaxTotalProcs int
	// MaxBytesPerPE caps the predetermined per-PE resident set of the
	// paper's §3.4 memory model, Mi·8·N²/P bytes (0 = no cap).
	MaxBytesPerPE float64
}

// zero reports whether the constraints restrict nothing.
func (c *Constraints) zero() bool {
	return c == nil || (len(c.Classes) == 0 && c.MaxTotalProcs == 0 && c.MaxBytesPerPE == 0)
}

// validate rejects caps below zero and class indices outside the grid.
func (c *Constraints) validate(classes int) error {
	if c == nil {
		return nil
	}
	if c.MaxTotalProcs < 0 {
		return fmt.Errorf("%w: negative maxTotalProcs %d", ErrNoModel, c.MaxTotalProcs)
	}
	if c.MaxBytesPerPE < 0 {
		return fmt.Errorf("%w: negative maxBytesPerPE %g", ErrNoModel, c.MaxBytesPerPE)
	}
	for _, v := range c.Classes {
		if v < 0 || v >= classes {
			return fmt.Errorf("%w: constraint class %d outside %d classes", ErrNoModel, v, classes)
		}
	}
	return nil
}

// FilterFunc compiles the constraints into the equivalent candidate
// predicate (nil when unconstrained), for problem size n over the given
// class count. This closure is the semantic ground truth: the structural
// pruning path must accept and reject exactly the candidates it does, and
// it remains the execution path for searches without dense grid tables
// (memory-guarded evaluators, oversized spaces) and for equivalence tests.
func (c *Constraints) FilterFunc(n float64, classes int) func(cfg cluster.Configuration) bool {
	if c.zero() {
		return nil
	}
	var allowed []bool
	if len(c.Classes) > 0 {
		allowed = make([]bool, classes)
		for _, v := range c.Classes {
			if v >= 0 && v < classes {
				allowed[v] = true
			}
		}
	}
	matrixBytes := 8 * n * n
	return func(cfg cluster.Configuration) bool {
		p, maxM := 0, 0
		for ci, u := range cfg.Use {
			if u.PEs <= 0 || u.Procs <= 0 {
				continue
			}
			if allowed != nil && (ci >= classes || !allowed[ci]) {
				return false
			}
			p += u.PEs * u.Procs
			if u.Procs > maxM {
				maxM = u.Procs
			}
		}
		if c.MaxTotalProcs > 0 && p > c.MaxTotalProcs {
			return false
		}
		if c.MaxBytesPerPE > 0 && p > 0 && matrixBytes/float64(p)*float64(maxM) > c.MaxBytesPerPE {
			return false
		}
		return true
	}
}

// conPlan is a per-search compilation of Constraints against one grid: the
// static per-(class, pair) exclusion mask plus the dynamic caps the walker
// checks against its prefix accumulators. Every structural skip it enables
// is exact — it removes a candidate if and only if FilterFunc rejects it —
// which the leaf-level checks guarantee by evaluating the closure's own
// float expressions on the closure's own operands, and the subtree-level
// checks guarantee by conservative corner bounds (see walker.walk).
type conPlan struct {
	// pairOK[ci][j] is false when no candidate using pair j of class ci can
	// satisfy the constraints: the class is outside the allowed subset, or
	// the pair's per-PE memory demand exceeds the cap even at the grid's
	// maximum total P. nil when only the dynamic P cap applies.
	pairOK [][]bool
	// maxP is the MaxTotalProcs cap (0 = none).
	maxP int
	// memCap is the MaxBytesPerPE cap (0 = none) and mat the 8·N² matrix
	// bytes of the §3.4 memory law it applies to.
	memCap, mat float64
}

// compile builds the walker's plan. Call validate first; compile assumes
// class indices are in range.
func (c *Constraints) compile(grid *cluster.Grid, t *gridTables, n float64) *conPlan {
	classes := grid.Classes()
	plan := &conPlan{maxP: c.MaxTotalProcs, memCap: c.MaxBytesPerPE, mat: 8 * n * n}
	var allowed []bool
	if len(c.Classes) > 0 {
		allowed = make([]bool, classes)
		for _, v := range c.Classes {
			allowed[v] = true
		}
	}
	if allowed == nil && plan.memCap <= 0 {
		return plan // only the P cap: no static exclusions to precompute
	}
	plan.pairOK = make([][]bool, classes)
	for ci := 0; ci < classes; ci++ {
		pairs := grid.Pairs(ci)
		row := make([]bool, len(pairs))
		for j, u := range pairs {
			ok := u.PEs == 0 || allowed == nil || allowed[ci]
			if ok && u.PEs > 0 && plan.memCap > 0 {
				// Static corner bound: the per-PE demand Mi·8N²/P is weakly
				// decreasing in P (IEEE division and multiplication are
				// weakly monotone), so if it exceeds the cap at the grid's
				// maximum achievable P with only this pair's own Mi, every
				// candidate using the pair demands at least as much.
				if plan.mat/float64(t.maxP)*float64(u.Procs) > plan.memCap {
					ok = false
				}
			}
			row[j] = ok
		}
		plan.pairOK[ci] = row
	}
	return plan
}

// andFilter combines two candidate predicates; either may be nil.
func andFilter(a, b func(cfg cluster.Configuration) bool) func(cfg cluster.Configuration) bool {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(cfg cluster.Configuration) bool { return a(cfg) && b(cfg) }
}
