package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSerializeRoundTrip: save → load → Validate → save again is byte-stable
// and the reloaded model answers estimates identically. Byte stability is
// what lets the committed model fixtures diff cleanly across regenerations.
func TestSerializeRoundTrip(t *testing.T) {
	ms, err := Build(2, twoClassWorld())
	if err != nil {
		t.Fatal(err)
	}
	first, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}

	loaded := &ModelSet{}
	if err := json.Unmarshal(first, loaded); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("round-tripped model invalid: %v", err)
	}
	second, err := json.Marshal(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("serialization is not byte-stable across a round trip")
	}

	for _, n := range []float64{400, 1600, 3200} {
		for _, cfg := range []int{0, 1} {
			use := twoClassWorld()[cfg].Config
			want, errW := ms.Estimate(use, n)
			got, errG := loaded.Estimate(use, n)
			if (errW == nil) != (errG == nil) || want != got {
				t.Errorf("N=%v cfg=%v: loaded model estimates %v (%v), want %v (%v)",
					n, use, got, errG, want, errW)
			}
		}
	}
}

// TestLoadModelSetFile: the shared loading path of hetopt/hetserve accepts a
// valid file and rejects every corruption class with a useful error.
func TestLoadModelSetFile(t *testing.T) {
	ms, err := Build(2, twoClassWorld())
	if err != nil {
		t.Fatal(err)
	}
	good, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	loaded, err := LoadModelSetFile(write("good.json", good))
	if err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	if loaded.Classes != ms.Classes {
		t.Errorf("loaded %d classes, want %d", loaded.Classes, ms.Classes)
	}

	if _, err := LoadModelSetFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}

	corrupt := func(mutate func(m map[string]json.RawMessage)) []byte {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(good, &m); err != nil {
			t.Fatal(err)
		}
		mutate(m)
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"truncated", good[:len(good)/2], "parse"},
		{"not json", []byte("pe classes go brrr"), "parse"},
		{"wrong version", corrupt(func(m map[string]json.RawMessage) {
			m["version"] = json.RawMessage("99")
		}), "version"},
		{"zero classes", corrupt(func(m map[string]json.RawMessage) {
			m["classes"] = json.RawMessage("0")
		}), "classes"},
		{"no models", corrupt(func(m map[string]json.RawMessage) {
			m["nt"] = json.RawMessage("[]")
			m["pt"] = json.RawMessage("[]")
		}), "invalid"},
		{"truncated coefficients", corrupt(func(m map[string]json.RawMessage) {
			var nt []map[string]json.RawMessage
			if err := json.Unmarshal(m["nt"], &nt); err != nil {
				t.Fatal(err)
			}
			nt[0]["TaCoeff"] = json.RawMessage("[1.0]")
			data, err := json.Marshal(nt)
			if err != nil {
				t.Fatal(err)
			}
			m["nt"] = data
		}), "malformed"},
		{"null model entry", corrupt(func(m map[string]json.RawMessage) {
			var nt []json.RawMessage
			if err := json.Unmarshal(m["nt"], &nt); err != nil {
				t.Fatal(err)
			}
			nt[0] = json.RawMessage("null")
			data, err := json.Marshal(nt)
			if err != nil {
				t.Fatal(err)
			}
			m["nt"] = data
		}), "malformed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadModelSetFile(write(tc.name+".json", tc.data))
			if err == nil {
				t.Fatal("corrupt file accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestUnmarshalRejectsBadSamplesKind: decode errors carry ErrBadSamples so
// callers can distinguish malformed models from I/O failures.
func TestUnmarshalRejectsBadSamplesKind(t *testing.T) {
	ms := &ModelSet{}
	err := ms.UnmarshalJSON([]byte(`{"version":1,"classes":-3}`))
	if !errors.Is(err, ErrBadSamples) {
		t.Errorf("got %v, want ErrBadSamples", err)
	}
}
