package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSerializeRoundTrip: save → load → Validate → save again is byte-stable
// and the reloaded model answers estimates identically. Byte stability is
// what lets the committed model fixtures diff cleanly across regenerations.
func TestSerializeRoundTrip(t *testing.T) {
	ms, err := Build(2, twoClassWorld())
	if err != nil {
		t.Fatal(err)
	}
	first, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}

	loaded := &ModelSet{}
	if err := json.Unmarshal(first, loaded); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("round-tripped model invalid: %v", err)
	}
	second, err := json.Marshal(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("serialization is not byte-stable across a round trip")
	}

	for _, n := range []float64{400, 1600, 3200} {
		for _, cfg := range []int{0, 1} {
			use := twoClassWorld()[cfg].Config
			want, errW := ms.Estimate(use, n)
			got, errG := loaded.Estimate(use, n)
			if (errW == nil) != (errG == nil) || want != got {
				t.Errorf("N=%v cfg=%v: loaded model estimates %v (%v), want %v (%v)",
					n, use, got, errG, want, errW)
			}
		}
	}
}

// TestSerializeBinnedRoundTrip: a model carrying its sample bins,
// compositions and calibration set — the state BuildModels produces —
// round-trips byte-stably, and the loaded bins support an exact rebuild:
// RebuildFromBins on the loaded model reproduces it bit for bit, so a
// reloaded model file is refittable with the same guarantees as the
// in-memory original.
func TestSerializeBinnedRoundTrip(t *testing.T) {
	ms := refitWorld(t)
	first, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	loaded := &ModelSet{}
	if err := json.Unmarshal(first, loaded); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("round-tripped binned model invalid: %v", err)
	}
	if loaded.Bins == nil {
		t.Fatal("bins lost in round trip")
	}
	if got, want := loaded.Bins.Len(), ms.Bins.Len(); got != want {
		t.Fatalf("loaded %d binned samples, want %d", got, want)
	}
	if got, want := len(loaded.Bins.Calibration()), len(ms.Bins.Calibration()); got != want {
		t.Fatalf("loaded %d calibration samples, want %d", got, want)
	}
	if got, want := len(loaded.Compositions), len(ms.Compositions); got != want {
		t.Fatalf("loaded %d compositions, want %d", got, want)
	}
	second, err := json.Marshal(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("binned serialization is not byte-stable across a round trip")
	}
	rebuilt, err := loaded.RebuildFromBins()
	if err != nil {
		t.Fatal(err)
	}
	third, err := json.Marshal(rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, third) {
		t.Error("rebuild from loaded bins does not reproduce the saved model")
	}
	// A binless model must keep its pre-refit byte representation: the three
	// refit sections are omitempty, so old fixtures stay diff-clean.
	plain, err := Build(2, twoClassWorld())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"bins"`, `"calibration"`, `"compositions"`} {
		if bytes.Contains(data, []byte(field)) {
			t.Errorf("binless model serializes %s", field)
		}
	}
}

// TestLoadRejectsMiskeyedBin: a bin whose samples disagree with its header
// key is corruption, not data.
func TestLoadRejectsMiskeyedBin(t *testing.T) {
	ms := refitWorld(t)
	good, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(good, &m); err != nil {
		t.Fatal(err)
	}
	var bins []map[string]json.RawMessage
	if err := json.Unmarshal(m["bins"], &bins); err != nil {
		t.Fatal(err)
	}
	bins[0]["class"] = json.RawMessage("1")
	bins[0]["m"] = json.RawMessage("1")
	patched, err := json.Marshal(bins)
	if err != nil {
		t.Fatal(err)
	}
	m["bins"] = patched
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got := &ModelSet{}
	err = got.UnmarshalJSON(data)
	if !errors.Is(err, ErrBadSamples) || !strings.Contains(err.Error(), "holds sample keyed") {
		t.Fatalf("miskeyed bin: got %v, want ErrBadSamples mentioning the key mismatch", err)
	}
}

// TestLoadModelSetFile: the shared loading path of hetopt/hetserve accepts a
// valid file and rejects every corruption class with a useful error.
func TestLoadModelSetFile(t *testing.T) {
	ms, err := Build(2, twoClassWorld())
	if err != nil {
		t.Fatal(err)
	}
	good, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	loaded, err := LoadModelSetFile(write("good.json", good))
	if err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	if loaded.Classes != ms.Classes {
		t.Errorf("loaded %d classes, want %d", loaded.Classes, ms.Classes)
	}

	if _, err := LoadModelSetFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}

	corrupt := func(mutate func(m map[string]json.RawMessage)) []byte {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(good, &m); err != nil {
			t.Fatal(err)
		}
		mutate(m)
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"truncated", good[:len(good)/2], "parse"},
		{"not json", []byte("pe classes go brrr"), "parse"},
		{"wrong version", corrupt(func(m map[string]json.RawMessage) {
			m["version"] = json.RawMessage("99")
		}), "version"},
		{"zero classes", corrupt(func(m map[string]json.RawMessage) {
			m["classes"] = json.RawMessage("0")
		}), "classes"},
		{"no models", corrupt(func(m map[string]json.RawMessage) {
			m["nt"] = json.RawMessage("[]")
			m["pt"] = json.RawMessage("[]")
		}), "invalid"},
		{"truncated coefficients", corrupt(func(m map[string]json.RawMessage) {
			var nt []map[string]json.RawMessage
			if err := json.Unmarshal(m["nt"], &nt); err != nil {
				t.Fatal(err)
			}
			nt[0]["TaCoeff"] = json.RawMessage("[1.0]")
			data, err := json.Marshal(nt)
			if err != nil {
				t.Fatal(err)
			}
			m["nt"] = data
		}), "malformed"},
		{"null model entry", corrupt(func(m map[string]json.RawMessage) {
			var nt []json.RawMessage
			if err := json.Unmarshal(m["nt"], &nt); err != nil {
				t.Fatal(err)
			}
			nt[0] = json.RawMessage("null")
			data, err := json.Marshal(nt)
			if err != nil {
				t.Fatal(err)
			}
			m["nt"] = data
		}), "malformed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadModelSetFile(write(tc.name+".json", tc.data))
			if err == nil {
				t.Fatal("corrupt file accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestUnmarshalRejectsBadSamplesKind: decode errors carry ErrBadSamples so
// callers can distinguish malformed models from I/O failures.
func TestUnmarshalRejectsBadSamplesKind(t *testing.T) {
	ms := &ModelSet{}
	err := ms.UnmarshalJSON([]byte(`{"version":1,"classes":-3}`))
	if !errors.Is(err, ErrBadSamples) {
		t.Errorf("got %v, want ErrBadSamples", err)
	}
}
