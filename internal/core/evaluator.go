package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"hetmodel/internal/cluster"
	"hetmodel/internal/lsq"
)

// Evaluator is a ModelSet compiled for one problem size n: every
// candidate-independent subexpression of the estimation path — the N-T
// estimates of the single-PE bins, the P-T reference polynomials Ra(n) and
// Rc(n), the products of those with the fitted constants, the adjustment
// transforms and their applicability per bin — is hoisted into dense
// [class][M] tables at compile time, so scoring a candidate is a handful of
// float operations with zero allocations and no map lookups.
//
// The compiled arithmetic preserves the exact operation order and rounding
// of ModelSet.Estimate (only already-constant subexpressions are folded),
// so an Evaluator scores bit-identically to the model set it was compiled
// from. The evaluator snapshots the model set: mutations made to the
// ModelSet after Compile are not reflected.
type Evaluator struct {
	classes int
	n       float64
	// nt[class][m] is the N-T estimate of the single-PE bin
	// {class, P: m, M: m}; NaN marks a missing bin.
	nt [][]float64
	// pt[class][m] is the compiled P-T entry of bin {class, m}.
	pt    [][]ptEval
	guard MemoryGuard
	// tcache is the one-slot grid-tables cache (see Evaluator.tables). It is
	// the evaluator's only mutable state; recomputing on a racing miss is
	// idempotent, so the model snapshot semantics above are unaffected.
	tcache atomic.Pointer[gridTablesEntry]
}

// ptEval is one compiled P-T bin. With the precomputed fields, the model's
//
//	Ta(n,P) = TaScale·(Ka0·Ra(n)/P + Ka1)
//	Tc(n,P) = TcScale·(Kc0·P·Rc(n) + Kc1·Rc(n)/P + Kc2)
//
// becomes taScale·(a0/P + ka1) and tcScale·(kc0·P·rc + c1/P + kc2), where
// a0 = Ka0·Ra(n) and c1 = Kc1·Rc(n) are folded (each a single
// multiplication of the same operands the uncompiled path performs, so the
// per-candidate float sequence is unchanged).
type ptEval struct {
	ok               bool
	a0, ka1, taScale float64
	kc0, rc, c1, kc2 float64
	tcScale          float64
	adjust           bool // class has a §4.1 transform and M >= AdjustMinM
	adjA, adjB       float64
	extrapAll        bool // composed model: every P extrapolates
	maxFitP          int  // fitted models extrapolate beyond this P
}

// Compile builds the evaluator for problem size n. Compilation is cheap —
// O(model bins) — so per-query compilation is fine; hot loops that score
// many candidates at one size should compile once and reuse.
//
// The memory guard, when the model set has one, is carried over and invoked
// per candidate with the configuration as the caller passed it (Tau) or
// normalized (Estimate); the guards built by cluster.MemoryGuard normalize
// internally, so both paths see identical decisions.
func (ms *ModelSet) Compile(n float64) *Evaluator {
	ev := &Evaluator{classes: ms.Classes, n: n, guard: ms.Memory}
	maxNT := make([]int, ms.Classes)
	maxPT := make([]int, ms.Classes)
	for k := range ms.NT {
		if k.Class >= 0 && k.Class < ms.Classes && k.P == k.M && k.M > maxNT[k.Class] {
			maxNT[k.Class] = k.M
		}
	}
	for k := range ms.PT {
		if k.Class >= 0 && k.Class < ms.Classes && k.M > maxPT[k.Class] {
			maxPT[k.Class] = k.M
		}
	}
	ev.nt = make([][]float64, ms.Classes)
	ev.pt = make([][]ptEval, ms.Classes)
	for ci := 0; ci < ms.Classes; ci++ {
		row := make([]float64, maxNT[ci]+1)
		for i := range row {
			row[i] = math.NaN()
		}
		ev.nt[ci] = row
		ev.pt[ci] = make([]ptEval, maxPT[ci]+1)
	}
	for k, m := range ms.NT {
		if m == nil || k.Class < 0 || k.Class >= ms.Classes || k.P != k.M {
			continue
		}
		if len(m.TaCoeff) != len(taDegrees) || len(m.TcCoeff) != len(tcDegrees) {
			continue
		}
		ev.nt[k.Class][k.M] = m.Estimate(n)
	}
	for k, m := range ms.PT {
		if m == nil || k.Class < 0 || k.Class >= ms.Classes || k.M < 0 {
			continue
		}
		if len(m.KaCoeff) != 2 || len(m.KcCoeff) != 3 ||
			len(m.RaCoeff) != len(taDegrees) || len(m.RcCoeff) != len(tcDegrees) {
			continue
		}
		ra := lsq.EvalPolynomial(m.RaCoeff, taDegrees, n)
		rc := lsq.EvalPolynomial(m.RcCoeff, tcDegrees, n)
		e := ptEval{
			ok:      true,
			a0:      m.KaCoeff[0] * ra,
			ka1:     m.KaCoeff[1],
			taScale: m.TaScale,
			kc0:     m.KcCoeff[0],
			rc:      rc,
			c1:      m.KcCoeff[1] * rc,
			kc2:     m.KcCoeff[2],
			tcScale: m.TcScale,
		}
		if m.Composed || len(m.Ps) == 0 {
			e.extrapAll = true
		} else {
			e.maxFitP = m.Ps[len(m.Ps)-1]
		}
		if lt := ms.Adjust[k.Class]; lt != nil && k.M >= ms.AdjustMinM {
			e.adjust, e.adjA, e.adjB = true, lt.A, lt.B
		}
		ev.pt[k.Class][k.M] = e
	}
	return ev
}

// N returns the problem size the evaluator was compiled for.
func (ev *Evaluator) N() float64 { return ev.n }

// classTau is the compiled EstimateClass: the per-class estimate for a
// class running `procs` processes per PE in a configuration with total
// process count p. ok is false when the model set has no bin for it.
//
//het:hotpath
//het:allocfree
func (ev *Evaluator) classTau(class, procs, p int) (float64, bool) {
	if p == procs {
		// Single-PE bin: the whole job runs on one processor.
		row := ev.nt[class]
		if procs < 0 || procs >= len(row) {
			return 0, false
		}
		v := row[procs]
		return v, !math.IsNaN(v)
	}
	row := ev.pt[class]
	if procs < 0 || procs >= len(row) {
		return 0, false
	}
	e := &row[procs]
	if !e.ok {
		return 0, false
	}
	pf := float64(p)
	ta := e.taScale * (e.a0/pf + e.ka1)
	tc := e.tcScale * (e.kc0*pf*e.rc + e.c1/pf + e.kc2)
	if e.adjust && (e.extrapAll || p > e.maxFitP) {
		tc = e.adjA*tc + e.adjB
		if tc < 0 {
			tc = 0
		}
	}
	return ta + tc, true
}

// Tau scores a configuration: the estimated execution time τ and whether
// the model set can score it at all (the boolean counterpart of Estimate's
// error). Tau allocates nothing: it treats classes with a nonpositive PE or
// process count as unused instead of materializing a normalized copy, which
// is equivalent by construction. The memory guard, when present, receives
// the configuration exactly as passed.
//
//het:hotpath
//het:allocfree
func (ev *Evaluator) Tau(cfg cluster.Configuration) (float64, bool) {
	if len(cfg.Use) != ev.classes {
		return 0, false
	}
	p := 0
	for _, u := range cfg.Use {
		if u.PEs > 0 && u.Procs > 0 {
			p += u.PEs * u.Procs
		}
	}
	if p == 0 {
		return 0, false
	}
	total := math.Inf(-1)
	for ci, u := range cfg.Use {
		if u.PEs <= 0 || u.Procs <= 0 {
			continue
		}
		ti, ok := ev.classTau(ci, u.Procs, p)
		if !ok {
			return 0, false
		}
		if ti > total {
			total = ti
		}
	}
	if ev.guard != nil {
		total *= ev.guard(cfg, ev.n)
	}
	return total, true
}

// Estimate is the error-reporting counterpart of Tau, with the same
// contract (normalization, error cases and values) as ModelSet.Estimate at
// the compiled size.
func (ev *Evaluator) Estimate(cfg cluster.Configuration) (float64, error) {
	cfg = cfg.Normalize()
	if len(cfg.Use) != ev.classes {
		return 0, fmt.Errorf("%w: %d classes in config, model set has %d", ErrNoModel, len(cfg.Use), ev.classes)
	}
	p := cfg.TotalProcs()
	total := math.Inf(-1)
	used := false
	for ci, u := range cfg.Use {
		if u.PEs == 0 {
			continue
		}
		used = true
		ti, ok := ev.classTau(ci, u.Procs, p)
		if !ok {
			if p == u.Procs {
				return 0, fmt.Errorf("%w: no N-T model for %v", ErrNoModel, Key{Class: ci, P: p, M: u.Procs})
			}
			return 0, fmt.Errorf("%w: no P-T model for %v", ErrNoModel, PTKey{Class: ci, M: u.Procs})
		}
		if ti > total {
			total = ti
		}
	}
	if !used {
		return 0, fmt.Errorf("%w: empty configuration", ErrNoModel)
	}
	if ev.guard != nil {
		total *= ev.guard(cfg, ev.n)
	}
	return total, nil
}
