package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// refitWorld builds the full refit fixture: the two-class world fitted,
// class 0 composed from class 1 with a fitted Ta factor, the §4.1
// adjustment calibrated, and the bin store attached — the state BuildModels
// leaves a model in.
func refitWorld(t *testing.T) *ModelSet {
	t.Helper()
	samples := twoClassWorld()
	ms, err := Build(2, samples)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.ComposeClassFitted(0, 1, 0.85); err != nil {
		t.Fatal(err)
	}
	calib := calibSamples()
	if err := ms.FitAdjustment(calib); err != nil {
		t.Fatal(err)
	}
	ms.Bins = NewBinStore(samples, calib)
	return ms
}

// calibSamples are §4.1 calibration measurements in each class's
// extrapolation region: class 0 is composed (always extrapolating), class 1
// beyond its largest fitted P (8 for M=1).
func calibSamples() []Sample {
	return []Sample{
		{Class: 0, M: 1, P: 9, N: 6400, Ta: 1, Tc: 0.9},
		{Class: 0, M: 2, P: 10, N: 6400, Ta: 1, Tc: 1.4},
		{Class: 1, M: 1, P: 9, N: 6400, Ta: 1, Tc: 1.1},
	}
}

func jsonBytes(t *testing.T, ms *ModelSet) []byte {
	t.Helper()
	data, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// assertBitIdentical compares two model sets through their serialized form:
// the JSON float encoding round-trips float64 uniquely, so byte equality is
// bit equality over every model, bin, recipe and transform.
func assertBitIdentical(t *testing.T, label string, a, b *ModelSet) {
	t.Helper()
	if !bytes.Equal(jsonBytes(t, a), jsonBytes(t, b)) {
		t.Fatalf("%s: model sets differ", label)
	}
}

// randomDelta draws a refit batch against the current store: replacements of
// stored measurements (jittered), fresh sizes in existing bins, occasionally
// a whole new (class, M) bin with enough sizes and process counts to be
// fittable, occasionally a calibration sample.
func randomDelta(rng *rand.Rand, ms *ModelSet, round int) SampleDelta {
	var d SampleDelta
	keys := ms.Bins.Keys()
	for i, picks := 0, 1+rng.Intn(4); i < picks; i++ {
		bin := ms.Bins.Samples(keys[rng.Intn(len(keys))])
		s := bin[rng.Intn(len(bin))]
		switch rng.Intn(3) {
		case 0: // replace a stored measurement with a re-measured value
			s.Ta *= 1 + 0.1*rng.Float64()
			s.Tc *= 1 + 0.1*rng.Float64()
		case 1: // extend the configuration's size sweep
			s.N = 7000 + 100*round + i
			s.Ta = s.Ta * 1.5
			s.Tc = s.Tc * 1.5
		default: // duplicate-in-delta: the last write must win
			s.Ta *= 0.95
			d.Samples = append(d.Samples, s)
			s.Ta *= 1.02
		}
		d.Samples = append(d.Samples, s)
	}
	if round%5 == 2 {
		// A brand-new class-1 bin: M = 3 measured on enough PEs and sizes
		// for both the N-T and P-T fits; composition then mirrors it into
		// class 0.
		m := 3 + round/5
		for _, pe := range []int{1, 2, 4} {
			p := pe * m
			for _, n := range []int{800, 1600, 2400, 3200} {
				nf := float64(n)
				ta := 7e-10*nf*nf*nf/float64(p) + 0.3
				tc := 1.5e-9*nf*nf*float64(p)/8 + 0.04
				d.Samples = append(d.Samples, Sample{N: n, P: p, Class: 1, M: m, Ta: ta, Tc: tc})
			}
		}
	}
	if round%3 == 1 {
		d.Calibration = append(d.Calibration, Sample{
			Class: rng.Intn(2), M: 1, P: 9, N: 6400, Ta: 1, Tc: 0.8 + 0.4*rng.Float64(),
		})
	}
	return d
}

// TestRefitBitIdenticalToRebuild is the central property: over a chain of
// randomized deltas, the incremental refit equals a from-scratch rebuild of
// the concatenated samples bit for bit — models, compositions, adjustment,
// bins, everything the model file serializes.
func TestRefitBitIdenticalToRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(1004))
	ms := refitWorld(t)
	// The fixture itself must satisfy the invariant refit preserves.
	ref, err := ms.RebuildFromBins()
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "fixture vs rebuild", ms, ref)
	for round := 0; round < 20; round++ {
		delta := randomDelta(rng, ms, round)
		next, rep, err := ms.Refit(delta)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if ms.Bins.Len()+rep.Appended != next.Bins.Len() {
			t.Fatalf("round %d: %d stored + %d appended != %d", round, ms.Bins.Len(), rep.Appended, next.Bins.Len())
		}
		ref, err := next.RebuildFromBins()
		if err != nil {
			t.Fatalf("round %d rebuild: %v", round, err)
		}
		assertBitIdentical(t, "refit vs rebuild", next, ref)
		if err := next.Validate(); err != nil {
			t.Fatalf("round %d: refit model invalid: %v", round, err)
		}
		ms = next // chain: refit-of-refit keeps the invariant
	}
}

// TestRefitSharesUntouchedModels: the perf contract — a one-bin delta leaves
// every other bin's model pointer untouched (no refit work), and the report
// names exactly the touched bin as changed.
func TestRefitSharesUntouchedModels(t *testing.T) {
	ms := refitWorld(t)
	target := PTKey{Class: 1, M: 2}
	// Pick an off-diagonal sample (P != M): the composition Ta factor is fit
	// from diagonal bins only, so it — and with it class 0's M=1 bin — must
	// stay bit-identical.
	var s Sample
	for _, cand := range ms.Bins.Samples(target) {
		if cand.P != cand.M {
			s = cand
			break
		}
	}
	if s.N == 0 {
		t.Fatal("fixture has no off-diagonal sample in class1/M2")
	}
	s.Ta *= 1.25
	next, rep, err := ms.Refit(SampleDelta{Samples: []Sample{s}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Touched) != 1 || rep.Touched[0] != target {
		t.Fatalf("touched = %v, want [%v]", rep.Touched, target)
	}
	if rep.Replaced != 1 || rep.Appended != 0 {
		t.Fatalf("replaced=%d appended=%d, want 1/0", rep.Replaced, rep.Appended)
	}
	// Changed must cover the touched bin; class 0's composed M=2 bin mirrors
	// class 1's P-T fit, so it changes too. Class-agnostic M=1 bins may not.
	wantChanged := map[PTKey]bool{{Class: 1, M: 2}: true, {Class: 0, M: 2}: true}
	for _, k := range rep.Changed {
		if !wantChanged[k] {
			t.Fatalf("unexpected changed bin %v (changed=%v)", k, rep.Changed)
		}
		delete(wantChanged, k)
	}
	if len(wantChanged) != 0 {
		t.Fatalf("bins not reported changed: %v (changed=%v)", wantChanged, rep.Changed)
	}
	// Untouched N-T models are shared pointers, not refits.
	for _, k := range ms.Keys() {
		if k.Class == target.Class && k.M == target.M {
			continue
		}
		if next.NT[k] != ms.NT[k] {
			t.Fatalf("untouched N-T bin %v was refit", k)
		}
	}
	if next.PT[PTKey{Class: 1, M: 1}] != ms.PT[PTKey{Class: 1, M: 1}] {
		t.Fatal("untouched P-T bin class1/M1 was refit")
	}
}

// TestRefitIdenticalSampleChangesNothing: re-measuring a configuration to
// the same values must produce an empty changed-bin report — the signal the
// serving layer uses to keep its entire evaluator cache.
func TestRefitIdenticalSampleChangesNothing(t *testing.T) {
	ms := refitWorld(t)
	s := ms.Bins.Samples(PTKey{Class: 1, M: 1})[2]
	next, rep, err := ms.Refit(SampleDelta{Samples: []Sample{s}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Changed) != 0 || len(rep.AdjustChanged) != 0 {
		t.Fatalf("changed=%v adjustChanged=%v, want none", rep.Changed, rep.AdjustChanged)
	}
	assertBitIdentical(t, "identical replacement", ms, next)
}

// TestRefitNewBin: a delta opening a new (class, M) bin grows new N-T and
// P-T models, and the composition replay mirrors the bin into the composed
// class.
func TestRefitNewBin(t *testing.T) {
	ms := refitWorld(t)
	var delta SampleDelta
	for _, pe := range []int{1, 2, 4} {
		p := pe * 3
		for _, n := range []int{800, 1600, 2400, 3200} {
			nf := float64(n)
			delta.Samples = append(delta.Samples, Sample{
				N: n, P: p, Class: 1, M: 3,
				Ta: 7e-10*nf*nf*nf/float64(p) + 0.3,
				Tc: 1.5e-9*nf*nf*float64(p)/8 + 0.04,
			})
		}
	}
	next, rep, err := ms.Refit(delta)
	if err != nil {
		t.Fatal(err)
	}
	if next.NT[Key{Class: 1, P: 3, M: 3}] == nil {
		t.Fatal("new N-T bin missing")
	}
	if pt := next.PT[PTKey{Class: 1, M: 3}]; pt == nil || pt.Composed {
		t.Fatalf("new P-T bin = %+v, want directly fitted", pt)
	}
	if pt := next.PT[PTKey{Class: 0, M: 3}]; pt == nil || !pt.Composed {
		t.Fatalf("composed mirror bin = %+v, want composed", pt)
	}
	changed := map[PTKey]bool{}
	for _, k := range rep.Changed {
		changed[k] = true
	}
	if !changed[PTKey{Class: 1, M: 3}] || !changed[PTKey{Class: 0, M: 3}] {
		t.Fatalf("changed = %v, want the new and mirrored bins", rep.Changed)
	}
}

// TestRefitCompositionScaleRefitted: changing a single-PE diagonal bin of
// the composition's source class re-derives the fitted Ta factor, so the
// composed class's bins change even though no sample touched them.
func TestRefitCompositionScaleRefitted(t *testing.T) {
	ms := refitWorld(t)
	before := ms.Compositions[0].TaScale
	var delta SampleDelta
	// Halve class 0's measured speed across both of its single-PE bins: the
	// work-weighted ratio against class 1 then doubles.
	for _, m := range []int{1, 2} {
		for _, s := range ms.Bins.Samples(PTKey{Class: 0, M: m}) {
			if s.P == s.M {
				s.Ta *= 2
				delta.Samples = append(delta.Samples, s)
			}
		}
	}
	next, rep, err := ms.Refit(delta)
	if err != nil {
		t.Fatal(err)
	}
	after := next.Compositions[0].TaScale
	if math.Abs(after-2*before) > 0.2*before {
		t.Fatalf("TaScale %v -> %v, want roughly doubled", before, after)
	}
	changed := map[PTKey]bool{}
	for _, k := range rep.Changed {
		changed[k] = true
	}
	for _, m := range []int{1, 2} {
		if !changed[PTKey{Class: 0, M: m}] {
			t.Fatalf("composed bin class0/M%d not reported changed (changed=%v)", m, rep.Changed)
		}
	}
}

// TestRefitAdjustmentRecomputed (satellite): the §4.1 transforms are refit
// from the union calibration set on every refit — deterministically, and
// reported per class.
func TestRefitAdjustmentRecomputed(t *testing.T) {
	ms := refitWorld(t)
	delta := SampleDelta{Calibration: []Sample{
		{Class: 1, M: 1, P: 16, N: 6400, Ta: 1, Tc: 2.5},
	}}
	next, rep, err := ms.Refit(delta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CalibAppended != 1 {
		t.Fatalf("calibAppended = %d, want 1", rep.CalibAppended)
	}
	if len(rep.Changed) != 0 {
		t.Fatalf("changed = %v, want none (calibration-only delta)", rep.Changed)
	}
	if len(rep.AdjustChanged) != 1 || rep.AdjustChanged[0] != 1 {
		t.Fatalf("adjustChanged = %v, want [1]", rep.AdjustChanged)
	}
	if next.Adjust[0].A != ms.Adjust[0].A {
		t.Fatal("class 0 transform changed by a class 1 calibration sample")
	}
	if next.Adjust[1].A == ms.Adjust[1].A {
		t.Fatal("class 1 transform did not absorb the new calibration sample")
	}
	// Determinism: the same refit from the same base is bit-identical.
	again, _, err := ms.Refit(delta)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "repeated refit", next, again)
	// And re-running FitAdjustment in place over the stored union set must
	// reproduce the transforms exactly.
	manual := next.Adjust
	if err := next.FitAdjustment(next.Bins.Calibration()); err != nil {
		t.Fatal(err)
	}
	for class, lt := range manual {
		got := next.Adjust[class]
		if got == nil || got.A != lt.A || got.B != lt.B {
			t.Fatalf("class %d: FitAdjustment re-run gave %+v, want %+v", class, got, lt)
		}
	}
}

// TestRefitErrors: the refit API rejects what it cannot digest, without
// mutating the receiver.
func TestRefitErrors(t *testing.T) {
	ms := refitWorld(t)
	before := jsonBytes(t, ms)

	binless, err := Build(2, twoClassWorld())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := binless.Refit(SampleDelta{Samples: []Sample{{Class: 0, M: 1, P: 1, N: 400, Ta: 1, Tc: 1}}}); !errors.Is(err, ErrNoModel) {
		t.Fatalf("binless refit: %v, want ErrNoModel", err)
	}
	if _, _, err := ms.Refit(SampleDelta{}); !errors.Is(err, ErrBadSamples) {
		t.Fatalf("empty delta: %v, want ErrBadSamples", err)
	}
	bad := []Sample{
		{Class: 7, M: 1, P: 1, N: 400, Ta: 1, Tc: 1},
		{Class: 0, M: 0, P: 1, N: 400, Ta: 1, Tc: 1},
		{Class: 0, M: 2, P: 1, N: 400, Ta: 1, Tc: 1},
		{Class: 0, M: 1, P: 1, N: 400, Ta: math.NaN(), Tc: 1},
	}
	for i, s := range bad {
		if _, _, err := ms.Refit(SampleDelta{Samples: []Sample{s}}); !errors.Is(err, ErrBadSamples) {
			t.Errorf("bad sample %d accepted (%v)", i, err)
		}
	}
	if !bytes.Equal(before, jsonBytes(t, ms)) {
		t.Fatal("failed refits mutated the receiver")
	}
}

// TestBinStoreLatestWins: appending an already-measured (bin, P, N) replaces
// the stored sample in place, keeping arrival order stable — the property
// that makes repeated re-measurements idempotent in shape.
func TestBinStoreLatestWins(t *testing.T) {
	ms := refitWorld(t)
	key := PTKey{Class: 1, M: 1}
	orig := append([]Sample(nil), ms.Bins.Samples(key)...)
	s := orig[3]
	s.Tc *= 3
	next, rep, err := ms.Refit(SampleDelta{Samples: []Sample{s}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replaced != 1 {
		t.Fatalf("replaced = %d, want 1", rep.Replaced)
	}
	got := next.Bins.Samples(key)
	if len(got) != len(orig) {
		t.Fatalf("bin grew from %d to %d samples", len(orig), len(got))
	}
	sameSample := func(a, b Sample) bool {
		return a.Class == b.Class && a.M == b.M && a.P == b.P && a.N == b.N &&
			a.Ta == b.Ta && a.Tc == b.Tc
	}
	for i := range got {
		want := orig[i]
		if i == 3 {
			want = s
		}
		if !sameSample(got[i], want) {
			t.Fatalf("bin[%d] = %+v, want %+v", i, got[i], want)
		}
	}
	// The original store is untouched (copy-on-write).
	if !sameSample(ms.Bins.Samples(key)[3], orig[3]) {
		t.Fatal("refit mutated the original bin store")
	}
}
