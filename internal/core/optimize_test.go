package core

import (
	"errors"
	"math"
	"testing"

	"hetmodel/internal/cluster"
)

func builtWorld(t *testing.T) *ModelSet {
	t.Helper()
	ms, err := Build(2, twoClassWorld())
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.ComposeClass(0, 1, 0.25, 0.85); err != nil {
		t.Fatal(err)
	}
	return ms
}

func candidateSpace() []cluster.Configuration {
	space := cluster.Space{
		PEChoices:   [][]int{{0, 1}, {0, 1, 2, 4, 8}},
		ProcChoices: [][]int{{1, 2}, {1, 2}},
	}
	cfgs, _ := space.Enumerate()
	return cfgs
}

func TestEstimateAllSkipsUnscorable(t *testing.T) {
	ms := builtWorld(t)
	cands := []cluster.Configuration{
		{Use: []cluster.ClassUse{{}, {PEs: 8, Procs: 1}}},
		{Use: []cluster.ClassUse{{}, {PEs: 1, Procs: 6}}}, // unmeasured M
	}
	ests := ms.EstimateAll(cands, 3200)
	if len(ests) != 2 {
		t.Fatalf("estimates = %d", len(ests))
	}
	if ests[0].Err != nil {
		t.Fatalf("scorable candidate errored: %v", ests[0].Err)
	}
	if ests[1].Err == nil {
		t.Fatal("unscorable candidate passed")
	}
}

func TestOptimizePicksMinimum(t *testing.T) {
	ms := builtWorld(t)
	cands := candidateSpace()
	best, tau, err := ms.Optimize(cands, 6400)
	if err != nil {
		t.Fatal(err)
	}
	// Verify it really is the minimum over scorable candidates.
	for _, e := range ms.EstimateAll(cands, 6400) {
		if e.Err == nil && e.Tau < tau-1e-12 {
			t.Fatalf("candidate %s (%v) beats chosen %s (%v)", e.Config, e.Tau, best, tau)
		}
	}
}

func TestOptimizeLargeNPrefersMorePEs(t *testing.T) {
	ms := builtWorld(t)
	cands := candidateSpace()
	bestSmall, _, err := ms.Optimize(cands, 400)
	if err != nil {
		t.Fatal(err)
	}
	bestLarge, _, err := ms.Optimize(cands, 6400)
	if err != nil {
		t.Fatal(err)
	}
	if bestLarge.TotalProcs() < bestSmall.TotalProcs() {
		t.Fatalf("large-N best %s uses fewer procs than small-N best %s", bestLarge, bestSmall)
	}
}

func TestOptimizeNoScorableCandidates(t *testing.T) {
	ms := builtWorld(t)
	cands := []cluster.Configuration{
		{Use: []cluster.ClassUse{{}, {PEs: 1, Procs: 6}}},
	}
	if _, _, err := ms.Optimize(cands, 3200); !errors.Is(err, ErrNoModel) {
		t.Fatal("optimizer succeeded with nothing scorable")
	}
}

func TestOptimizeHeuristicFindsGoodSolution(t *testing.T) {
	ms := builtWorld(t)
	space := cluster.Space{
		PEChoices:   [][]int{{0, 1}, {0, 1, 2, 4, 8}},
		ProcChoices: [][]int{{1, 2}, {1, 2}},
	}
	cfgs, _ := space.Enumerate()
	_, exhaustiveTau, err := ms.Optimize(cfgs, 6400)
	if err != nil {
		t.Fatal(err)
	}
	_, heurTau, evals, err := ms.OptimizeHeuristic(space, 6400)
	if err != nil {
		t.Fatal(err)
	}
	// The hill climb must reach within 20% of the exhaustive optimum on
	// this smooth landscape, using fewer evaluations than the full grid.
	if heurTau > exhaustiveTau*1.2 {
		t.Fatalf("heuristic tau %v far from exhaustive %v", heurTau, exhaustiveTau)
	}
	if evals <= 0 {
		t.Fatal("no evaluations recorded")
	}
}

func TestOptimizeHeuristicValidation(t *testing.T) {
	ms := builtWorld(t)
	if _, _, _, err := ms.OptimizeHeuristic(cluster.Space{}, 3200); !errors.Is(err, ErrNoModel) {
		t.Fatal("mismatched space accepted")
	}
}

func TestNeighbours(t *testing.T) {
	choices := []int{0, 1, 2, 4, 8}
	got := neighbours(choices, 2)
	want := map[int]bool{1: true, 4: true, 0: true}
	if len(got) != len(want) {
		t.Fatalf("neighbours(2) = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected neighbour %d", v)
		}
	}
	// Extremes.
	if got := neighbours(choices, 0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("neighbours(0) = %v", got)
	}
	if got := neighbours(choices, 8); len(got) != 2 { // 4 and jump-to-0
		t.Fatalf("neighbours(8) = %v", got)
	}
	// Value not in the list falls back to the extremes.
	if got := neighbours(choices, 3); len(got) < 2 {
		t.Fatalf("neighbours(3) = %v", got)
	}
}

func TestMinPositive(t *testing.T) {
	if minPositive([]int{0, 1, 2}) != 1 {
		t.Fatal("minPositive")
	}
	if minPositive([]int{0}) != 0 {
		t.Fatal("minPositive all zero")
	}
	if minPositive(nil) != 0 {
		t.Fatal("minPositive empty")
	}
}

func TestMaxM(t *testing.T) {
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 4}, {PEs: 8, Procs: 1}}}
	if maxM(cfg) != 4 {
		t.Fatal("maxM")
	}
	cfg = cluster.Configuration{Use: []cluster.ClassUse{{PEs: 0, Procs: 9}, {PEs: 8, Procs: 1}}}
	if maxM(cfg) != 1 {
		t.Fatal("maxM must ignore unused classes")
	}
}

func TestEstimateMonotoneInN(t *testing.T) {
	ms := builtWorld(t)
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{}, {PEs: 8, Procs: 1}}}
	prev := -math.MaxFloat64
	for _, n := range []float64{800, 1600, 3200, 6400, 9600} {
		est, err := ms.Estimate(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		if est <= prev {
			t.Fatalf("estimate not increasing at N=%v", n)
		}
		prev = est
	}
}

// TestOptimizeWorkersDeterminism asserts the concurrent candidate sweep
// picks the identical configuration and tau as the sequential scan, and
// that the full estimate vectors match bit-for-bit.
func TestOptimizeWorkersDeterminism(t *testing.T) {
	ms := builtWorld(t)
	cands := candidateSpace()
	seqBest, seqTau, seqErr := ms.OptimizeWorkers(cands, 6400, 1)
	seqEsts := ms.EstimateAllWorkers(cands, 6400, 1)
	for _, workers := range []int{2, 8, 0} {
		best, tau, err := ms.OptimizeWorkers(cands, 6400, workers)
		if (err == nil) != (seqErr == nil) {
			t.Fatalf("workers=%d: err %v vs sequential %v", workers, err, seqErr)
		}
		if best.Key() != seqBest.Key() || tau != seqTau {
			t.Fatalf("workers=%d: picked %s (%v), sequential picked %s (%v)",
				workers, best, tau, seqBest, seqTau)
		}
		ests := ms.EstimateAllWorkers(cands, 6400, workers)
		if len(ests) != len(seqEsts) {
			t.Fatalf("workers=%d: %d estimates vs %d", workers, len(ests), len(seqEsts))
		}
		for i := range ests {
			if ests[i].Tau != seqEsts[i].Tau || (ests[i].Err == nil) != (seqEsts[i].Err == nil) {
				t.Fatalf("workers=%d: estimate %d differs: %+v vs %+v", workers, i, ests[i], seqEsts[i])
			}
		}
	}
}

// TestOptimizeWorkersTieBreak pins the tie rule: among equal taus the
// earliest candidate wins at every worker count.
func TestOptimizeWorkersTieBreak(t *testing.T) {
	ms := builtWorld(t)
	cands := candidateSpace()
	// Duplicate the full list: every candidate now has an equal-tau twin
	// later in the order; the winner must come from the first half.
	doubled := append(append([]cluster.Configuration(nil), cands...), cands...)
	seqBest, _, err := ms.OptimizeWorkers(doubled, 6400, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 0} {
		best, _, err := ms.OptimizeWorkers(doubled, 6400, workers)
		if err != nil {
			t.Fatal(err)
		}
		if best.Key() != seqBest.Key() {
			t.Fatalf("workers=%d: tie broke to %s, sequential picked %s", workers, best, seqBest)
		}
	}
}
