package core

import (
	"math"
	"testing"

	"hetmodel/internal/cluster"
	"hetmodel/internal/parallel"
)

// seedCases pairs adversarial duplicate-τ worlds with compatible spaces. The
// tie worlds are the dedup stress input: coordinate descent revisits the same
// grid point from different sweep positions with identical τ, so without the
// Contains guard one configuration would fill several scratch slots and drag
// the published threshold below the true k-th best. richWorld rides along as
// the general-position control.
func seedCases(t *testing.T) []struct {
	name string
	ms   *ModelSet
	grid *cluster.Grid
} {
	t.Helper()
	var cases []struct {
		name string
		ms   *ModelSet
		grid *cluster.Grid
	}
	add := func(name string, ms *ModelSet, space cluster.Space) {
		grid, err := space.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if grid.Size() == 0 {
			return
		}
		cases = append(cases, struct {
			name string
			ms   *ModelSet
			grid *cluster.Grid
		}{name, ms, grid})
	}
	for si, space := range evalSpaces() {
		if si == 0 {
			add("ties2", tieWorld(t), space)
			add("rich", richWorld(t, nil), space)
		}
	}
	add("ties4", tieWorldN(t, 4), multiClassSpace(4))
	return cases
}

// TestSeedThresholdDedupAndUpperBound pins the two properties Search relies
// on when it seeds the shared pruning bound: the scratch selection never
// holds one grid ordinal twice (Contains-based dedup, exercised here on
// grids saturated with exact τ ties), and the published threshold is the
// exact τ of real grid points and upper-bounds the grid's true k-th best τ —
// the invariant that makes strict-compare pruning against the seed sound.
func TestSeedThresholdDedupAndUpperBound(t *testing.T) {
	for _, tc := range seedCases(t) {
		ev := tc.ms.Compile(2400)
		tbl := ev.tables(tc.grid)
		if tbl == nil {
			t.Fatalf("%s: no dense tables", tc.name)
		}
		emptyIdx := emptyIndex(tc.grid)
		truth, _ := v1Offers(tc.grid, tbl, 0, tc.grid.Size(), emptyIdx, nil)
		tauAt := make(map[int64]uint64, len(truth))
		for _, c := range truth {
			tauAt[c.Index] = math.Float64bits(c.Score)
		}
		for _, k := range []int{1, 2, 4, 8, 16} {
			scratch := &seedScratch{}
			shared := parallel.NewSharedThreshold()
			seedThreshold(tbl, scratch, k, shared)
			thr := shared.Load()
			held := scratch.tk.Sorted()
			if len(held) > k {
				t.Fatalf("%s k=%d: scratch holds %d candidates", tc.name, k, len(held))
			}
			seen := make(map[int64]bool, len(held))
			for _, c := range held {
				if seen[c.Index] {
					t.Fatalf("%s k=%d: ordinal %d seeded twice despite duplicate-τ dedup",
						tc.name, k, c.Index)
				}
				seen[c.Index] = true
				bits, ok := tauAt[c.Index]
				if !ok {
					t.Fatalf("%s k=%d: probe ordinal %d is not a scorable grid point", tc.name, k, c.Index)
				}
				if bits != math.Float64bits(c.Score) {
					t.Fatalf("%s k=%d: probe τ %x for ordinal %d, walker scores %x",
						tc.name, k, math.Float64bits(c.Score), c.Index, bits)
				}
			}
			if len(held) < k {
				if !math.IsInf(thr, 1) {
					t.Fatalf("%s k=%d: %d probes held but threshold %v is finite",
						tc.name, k, len(held), thr)
				}
				continue
			}
			if len(truth) >= k && thr < truth[k-1].Score {
				t.Fatalf("%s k=%d: seeded threshold %v under-bounds true k-th best %v — pruning would drop candidates",
					tc.name, k, thr, truth[k-1].Score)
			}
		}
	}
}

// TestSeededSearchBitIdenticalToNoPrune runs the production path the seed
// accelerates — default pruned Search, where the gate in Search enables
// seeding (full range, no filter, no constraints) — against an unseeded,
// unpruned baseline on the duplicate-τ grids, across k and worker counts.
// Rankings must match bit for bit: the seed may only skip candidates that
// rank strictly after k others, never a tie.
func TestSeededSearchBitIdenticalToNoPrune(t *testing.T) {
	for _, tc := range seedCases(t) {
		ev := tc.ms.Compile(2400)
		for _, k := range []int{1, 4, 16} {
			base, err := ev.Search(tc.grid, SearchOptions{Workers: 1, TopK: k, NoPrune: true})
			if err != nil {
				t.Fatalf("%s k=%d: baseline: %v", tc.name, k, err)
			}
			for _, workers := range []int{1, 2, 8} {
				got, err := ev.Search(tc.grid, SearchOptions{Workers: workers, TopK: k})
				if err != nil {
					t.Fatalf("%s k=%d w=%d: %v", tc.name, k, workers, err)
				}
				if len(got.Best) != len(base.Best) {
					t.Fatalf("%s k=%d w=%d: seeded search returned %d candidates, baseline %d",
						tc.name, k, workers, len(got.Best), len(base.Best))
				}
				for i := range base.Best {
					if got.BestIndex[i] != base.BestIndex[i] ||
						math.Float64bits(got.Best[i].Tau) != math.Float64bits(base.Best[i].Tau) {
						t.Fatalf("%s k=%d w=%d rank %d: seeded (%d, %x) vs baseline (%d, %x)",
							tc.name, k, workers, i,
							got.BestIndex[i], math.Float64bits(got.Best[i].Tau),
							base.BestIndex[i], math.Float64bits(base.Best[i].Tau))
					}
				}
				if got.Size != base.Size || got.Scored+got.Pruned != got.Size {
					t.Fatalf("%s k=%d w=%d: accounting %d+%d vs size %d (baseline size %d)",
						tc.name, k, workers, got.Scored, got.Pruned, got.Size, base.Size)
				}
			}
		}
	}
}
