package core

import (
	"fmt"
	"sort"

	"hetmodel/internal/linalg"
	"hetmodel/internal/lsq"
)

// PTModel is the paper's P-T model (§3.3): for one (PE class, Mi), execution
// time as a function of both N and the total process count P:
//
//	Ta(N, P) = k7·Ra(N)/P + k8
//	Tc(N, P) = k9·P·Rc(N) + k10·Rc(N)/P + k11
//
// The paper writes the regressors as Tai(N)|P,Mi — the N-T prediction of the
// corresponding configuration. To obtain a single model usable at any P, we
// anchor them to reference curves derived from the N-T fits:
//
//   - Ra(N) is the total-work curve: the N-T Ta of the smallest measured P
//     for this bin, multiplied by that P (per-process work ∝ 1/P, so
//     Ta·P approximates the P-independent total).
//   - Rc(N) is the N-T Tc of the smallest measured P strictly greater than
//     M (single-PE runs have no inter-PE communication to anchor on).
//
// The constants k7–k11 then absorb the remaining P dependence, exactly in
// the spirit of the paper's semi-empirical fit.
type PTModel struct {
	Key PTKey
	// KaCoeff are k7, k8.
	KaCoeff []float64
	// KcCoeff are k9, k10, k11.
	KcCoeff []float64
	// RaCoeff is the reference total-work cubic (Ta coefficients already
	// scaled by the reference P).
	RaCoeff []float64
	// RcCoeff is the reference communication quadratic.
	RcCoeff []float64
	// Ps are the process counts the model was fit across.
	Ps []int
	// TaScale and TcScale support model composition (§3.5): predictions
	// are multiplied by these factors (1 for directly fitted models).
	TaScale, TcScale float64
	// Composed marks a model derived by composition rather than fitted
	// from its own class's measurements.
	Composed bool
}

// Extrapolating reports whether a prediction at total process count p lies
// outside the model's own evidence: composed models always extrapolate
// (their class was never measured multi-PE), fitted models beyond their
// largest fitted P. These are the regions the §4.1 adjustment corrects.
func (m *PTModel) Extrapolating(p int) bool {
	if m.Composed || len(m.Ps) == 0 {
		return true
	}
	return p > m.Ps[len(m.Ps)-1]
}

// FitPT fits a P-T model for one (class, M) bin from N-T models across
// several P plus the underlying raw samples. The paper requires at least
// three distinct P (Tc has three coefficients).
func FitPT(nts map[Key]*NTModel, samples []Sample, key PTKey) (*PTModel, error) {
	// Collect this bin's N-T models ordered by P.
	var ps []int
	for k := range nts {
		if k.Class == key.Class && k.M == key.M {
			ps = append(ps, k.P)
		}
	}
	sort.Ints(ps)
	if len(ps) < 3 {
		return nil, fmt.Errorf("%w: bin %v has %d process counts, need >= 3", ErrBadSamples, key, len(ps))
	}
	refA := nts[Key{Class: key.Class, P: ps[0], M: key.M}]
	raCoeff := append([]float64(nil), refA.TaCoeff...)
	for i := range raCoeff {
		raCoeff[i] *= float64(ps[0])
	}
	// Communication reference: smallest P with inter-PE communication.
	var refC *NTModel
	for _, p := range ps {
		if p > key.M {
			refC = nts[Key{Class: key.Class, P: p, M: key.M}]
			break
		}
	}
	if refC == nil {
		return nil, fmt.Errorf("%w: bin %v has no multi-PE run for the Tc reference", ErrBadSamples, key)
	}
	rcCoeff := append([]float64(nil), refC.TcCoeff...)

	ra := func(n float64) float64 { return lsq.EvalPolynomial(raCoeff, taDegrees, n) }
	rc := func(n float64) float64 { return lsq.EvalPolynomial(rcCoeff, tcDegrees, n) }

	// Regress k7, k8 and k9..k11 over the raw samples of the bin.
	var rowsA, rowsC [][]float64
	var ysA, ysC []float64
	for _, s := range samples {
		if s.Class != key.Class || s.M != key.M {
			continue
		}
		n, p := float64(s.N), float64(s.P)
		rowsA = append(rowsA, []float64{ra(n) / p, 1})
		ysA = append(ysA, s.Ta)
		rowsC = append(rowsC, []float64{p * rc(n), rc(n) / p, 1})
		ysC = append(ysC, s.Tc)
	}
	if len(rowsA) < 3 {
		return nil, fmt.Errorf("%w: bin %v has %d samples", ErrBadSamples, key, len(rowsA))
	}
	da, err := linalg.FromRows(rowsA)
	if err != nil {
		return nil, err
	}
	dc, err := linalg.FromRows(rowsC)
	if err != nil {
		return nil, err
	}
	fa, err := lsq.MultifitLinear(da, ysA)
	if err != nil {
		return nil, fmt.Errorf("core: P-T Ta fit for %v: %w", key, err)
	}
	fc, err := lsq.MultifitLinear(dc, ysC)
	if err != nil {
		return nil, fmt.Errorf("core: P-T Tc fit for %v: %w", key, err)
	}
	return &PTModel{
		Key:     key,
		KaCoeff: fa.Coeff,
		KcCoeff: fc.Coeff,
		RaCoeff: raCoeff,
		RcCoeff: rcCoeff,
		Ps:      ps,
		TaScale: 1,
		TcScale: 1,
	}, nil
}

// Ta evaluates the P-T computation time at (n, P).
func (m *PTModel) Ta(n float64, p int) float64 {
	ra := lsq.EvalPolynomial(m.RaCoeff, taDegrees, n)
	return m.TaScale * (m.KaCoeff[0]*ra/float64(p) + m.KaCoeff[1])
}

// Tc evaluates the P-T communication time at (n, P).
func (m *PTModel) Tc(n float64, p int) float64 {
	rc := lsq.EvalPolynomial(m.RcCoeff, tcDegrees, n)
	pf := float64(p)
	return m.TcScale * (m.KcCoeff[0]*pf*rc + m.KcCoeff[1]*rc/pf + m.KcCoeff[2])
}

// Estimate returns Ta + Tc at (n, P).
func (m *PTModel) Estimate(n float64, p int) float64 { return m.Ta(n, p) + m.Tc(n, p) }

// Compose returns a copy of the model rebound to another class with scaled
// predictions — the paper's model composition (§3.5), which derives the
// Athlon P-T models from the Pentium-II ones by constant factors.
func (m *PTModel) Compose(class int, taScale, tcScale float64) *PTModel {
	out := *m
	out.Key = PTKey{Class: class, M: m.Key.M}
	out.KaCoeff = append([]float64(nil), m.KaCoeff...)
	out.KcCoeff = append([]float64(nil), m.KcCoeff...)
	out.RaCoeff = append([]float64(nil), m.RaCoeff...)
	out.RcCoeff = append([]float64(nil), m.RcCoeff...)
	out.TaScale = m.TaScale * taScale
	out.TcScale = m.TcScale * tcScale
	out.Composed = true
	return &out
}

// FitAllPT fits P-T models for every (class, M) bin that has enough
// process counts, returning them keyed by bin. Bins without at least three
// P are skipped (the caller composes those, §3.5).
func FitAllPT(nts map[Key]*NTModel, samples []Sample) map[PTKey]*PTModel {
	bins := map[PTKey]bool{}
	for k := range nts {
		bins[PTKey{Class: k.Class, M: k.M}] = true
	}
	out := make(map[PTKey]*PTModel)
	for key := range bins {
		if m, err := FitPT(nts, samples, key); err == nil {
			out[key] = m
		}
	}
	return out
}
