package core

import (
	"encoding/json"
	"fmt"
	"os"

	"hetmodel/internal/stats"
)

// modelSetJSON is the stable on-disk representation of a ModelSet (maps
// keyed by structs are flattened into entry lists). The bins, calibration
// and compositions sections carry the incremental-refit state; all three are
// omitempty, so files written before refit existed — and models built
// without bins — keep their exact byte representation.
type modelSetJSON struct {
	Version      int                            `json:"version"`
	Classes      int                            `json:"classes"`
	NT           []*NTModel                     `json:"nt"`
	PT           []*PTModel                     `json:"pt"`
	Adjust       map[int]*stats.LinearTransform `json:"adjust,omitempty"`
	AdjustMinM   int                            `json:"adjustMinM"`
	Compositions []Composition                  `json:"compositions,omitempty"`
	Bins         []binJSON                      `json:"bins,omitempty"`
	Calibration  []StoredSample                 `json:"calibration,omitempty"`
}

// binJSON is one persisted (class, M) sample bin, samples in arrival order.
type binJSON struct {
	Class   int            `json:"class"`
	M       int            `json:"m"`
	Samples []StoredSample `json:"samples"`
}

const serializeVersion = 1

// MarshalJSON implements json.Marshaler.
func (ms *ModelSet) MarshalJSON() ([]byte, error) {
	out := modelSetJSON{
		Version:      serializeVersion,
		Classes:      ms.Classes,
		Adjust:       ms.Adjust,
		AdjustMinM:   ms.AdjustMinM,
		Compositions: ms.Compositions,
	}
	for _, k := range ms.Keys() {
		out.NT = append(out.NT, ms.NT[k])
	}
	for _, k := range ms.PTKeys() {
		out.PT = append(out.PT, ms.PT[k])
	}
	if ms.Bins != nil {
		for _, k := range ms.Bins.Keys() {
			bin := binJSON{Class: k.Class, M: k.M}
			for _, s := range ms.Bins.Samples(k) {
				bin.Samples = append(bin.Samples, StoredSample{Class: s.Class, P: s.P, M: s.M, N: s.N, Ta: s.Ta, Tc: s.Tc})
			}
			out.Bins = append(out.Bins, bin)
		}
		for _, s := range ms.Bins.Calibration() {
			out.Calibration = append(out.Calibration, StoredSample{Class: s.Class, P: s.P, M: s.M, N: s.N, Ta: s.Ta, Tc: s.Tc})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (ms *ModelSet) UnmarshalJSON(data []byte) error {
	var in modelSetJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Version != serializeVersion {
		return fmt.Errorf("core: unsupported model file version %d", in.Version)
	}
	if in.Classes <= 0 {
		return fmt.Errorf("%w: %d classes", ErrBadSamples, in.Classes)
	}
	ms.Classes = in.Classes
	ms.Adjust = in.Adjust
	ms.AdjustMinM = in.AdjustMinM
	ms.NT = make(map[Key]*NTModel, len(in.NT))
	for _, m := range in.NT {
		if m == nil || len(m.TaCoeff) != len(taDegrees) || len(m.TcCoeff) != len(tcDegrees) {
			return fmt.Errorf("%w: malformed N-T model", ErrBadSamples)
		}
		ms.NT[m.Key] = m
	}
	ms.PT = make(map[PTKey]*PTModel, len(in.PT))
	for _, m := range in.PT {
		if m == nil || len(m.KaCoeff) != 2 || len(m.KcCoeff) != 3 {
			return fmt.Errorf("%w: malformed P-T model", ErrBadSamples)
		}
		ms.PT[m.Key] = m
	}
	ms.Compositions = in.Compositions
	ms.Bins = nil
	if len(in.Bins) > 0 || len(in.Calibration) > 0 {
		var samples, calib []Sample
		for _, bin := range in.Bins {
			for _, s := range bin.Samples {
				if s.Class != bin.Class || s.M != bin.M {
					return fmt.Errorf("%w: bin class%d/M%d holds sample keyed class%d/M%d",
						ErrBadSamples, bin.Class, bin.M, s.Class, s.M)
				}
				samples = append(samples, s.Sample())
			}
		}
		for _, s := range in.Calibration {
			calib = append(calib, s.Sample())
		}
		ms.Bins = NewBinStore(samples, calib)
	}
	return nil
}

// LoadModelSetFile reads and decodes a model file written by modelfit,
// rejecting files that decode cleanly but do not describe a usable estimator
// (e.g. an empty or truncated model list) via Validate. It is the shared
// loading path of hetopt, hetserve and the serving layer's reload endpoint.
func LoadModelSetFile(path string) (*ModelSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ms := &ModelSet{}
	if err := json.Unmarshal(data, ms); err != nil {
		return nil, fmt.Errorf("parse %s: %v", path, err)
	}
	if err := ms.Validate(); err != nil {
		return nil, fmt.Errorf("invalid model file %s: %v", path, err)
	}
	return ms, nil
}
