package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hetmodel/internal/cluster"
	"hetmodel/internal/stats"
)

// richWorld builds a two-class model set exercising every estimation
// feature: fitted P-T bins for M = 1..4, composed class-0 P-T models, a
// §4.1 adjustment on both classes, and (optionally) a memory guard.
func richWorld(t *testing.T, guard MemoryGuard) *ModelSet {
	t.Helper()
	var samples []Sample
	for m := 1; m <= 4; m++ {
		for _, pe := range []int{1, 2, 4, 8} {
			p := pe * m
			for _, n := range paperNs {
				nf := float64(n)
				ta := 6e-10*nf*nf*nf/float64(p) + 0.2
				tc := 1e-9 * nf * nf
				if pe > 1 {
					tc = 2e-9*nf*nf*float64(p) + 1e-8*nf*nf/float64(p) + 0.05
				}
				samples = append(samples, Sample{
					Config: cluster.Configuration{Use: []cluster.ClassUse{{}, {PEs: pe, Procs: m}}},
					N:      n, P: p, Class: 1, M: m, Ta: ta, Tc: tc, Wall: ta + tc,
				})
			}
		}
		for _, n := range paperNs {
			nf := float64(n)
			ta := 6e-10*nf*nf*nf/float64(m)/4 + 0.1
			tc := 0.25e-9 * nf * nf
			samples = append(samples, Sample{
				Config: cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: m}, {}}},
				N:      n, P: m, Class: 0, M: m, Ta: ta, Tc: tc, Wall: ta + tc,
			})
		}
	}
	ms, err := Build(2, samples)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.ComposeClass(0, 1, 0.25, 0.85); err != nil {
		t.Fatal(err)
	}
	ms.AdjustMinM = 2
	ms.Adjust = map[int]*stats.LinearTransform{
		0: {A: 0.93, B: 0.4},
		1: {A: 1.07, B: -0.2},
	}
	ms.Memory = guard
	return ms
}

// evalSpaces returns the paper evaluation space plus deterministic random
// spaces (including zero and duplicate choices) for property tests.
func evalSpaces() []cluster.Space {
	spaces := []cluster.Space{cluster.PaperEvaluationSpace()}
	rng := rand.New(rand.NewSource(7))
	pick := func() []int {
		vals := []int{0, 0, 1, 2, 3, 4, 6, 8}
		out := make([]int, 1+rng.Intn(4))
		for i := range out {
			out[i] = vals[rng.Intn(len(vals))]
		}
		return out
	}
	for i := 0; i < 8; i++ {
		spaces = append(spaces, cluster.Space{
			PEChoices:   [][]int{pick(), pick()},
			ProcChoices: [][]int{pick(), pick()},
		})
	}
	return spaces
}

// TestEvaluatorBitIdenticalToModelSet is the core compilation contract:
// the evaluator returns bit-for-bit the value ModelSet.Estimate returns,
// and fails exactly where it fails, over the paper evaluation space and
// randomized spaces, at several problem sizes, with and without a guard.
func TestEvaluatorBitIdenticalToModelSet(t *testing.T) {
	guard := func(cfg cluster.Configuration, n float64) float64 {
		if n >= 6400 && cfg.TotalProcs() < 2 {
			return math.Inf(1) // exclude: pretend one node cannot hold it
		}
		return 1
	}
	for name, ms := range map[string]*ModelSet{
		"noGuard": richWorld(t, nil),
		"guarded": richWorld(t, guard),
	} {
		for _, n := range []float64{400, 3200, 6400, 9600} {
			ev := ms.Compile(n)
			for si, space := range evalSpaces() {
				cfgs, err := space.Enumerate()
				if err != nil {
					t.Fatal(err)
				}
				for _, cfg := range cfgs {
					want, wantErr := ms.Estimate(cfg, n)
					got, gotErr := ev.Estimate(cfg)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("%s space %d n=%v %s: err %v vs %v", name, si, n, cfg, gotErr, wantErr)
					}
					if wantErr == nil && got != want {
						t.Fatalf("%s space %d n=%v %s: evaluator %v, model set %v (diff %g)",
							name, si, n, cfg, got, want, got-want)
					}
					tau, ok := ev.Tau(cfg)
					if ok != (wantErr == nil) {
						t.Fatalf("%s space %d n=%v %s: Tau ok=%v, Estimate err=%v", name, si, n, cfg, ok, wantErr)
					}
					if ok && tau != want {
						t.Fatalf("%s space %d n=%v %s: Tau %v, Estimate %v", name, si, n, cfg, tau, want)
					}
				}
			}
		}
	}
}

// TestEvaluatorEstimateErrors pins the error cases to the ModelSet ones.
func TestEvaluatorEstimateErrors(t *testing.T) {
	ms := richWorld(t, nil)
	ev := ms.Compile(3200)
	cases := []cluster.Configuration{
		{},                                // class-count mismatch
		{Use: []cluster.ClassUse{{}, {}}}, // empty
		{Use: []cluster.ClassUse{{}, {PEs: 1, Procs: 9}}},                  // no N-T bin
		{Use: []cluster.ClassUse{{}, {PEs: 2, Procs: 9}}},                  // no P-T bin
		{Use: []cluster.ClassUse{{PEs: -3, Procs: 2}, {PEs: 0, Procs: 5}}}, // normalizes to empty
	}
	for _, cfg := range cases {
		_, msErr := ms.Estimate(cfg, 3200)
		_, evErr := ev.Estimate(cfg)
		if msErr == nil || evErr == nil {
			t.Fatalf("%s: expected errors, got %v / %v", cfg, msErr, evErr)
		}
		if !errors.Is(evErr, ErrNoModel) {
			t.Fatalf("%s: evaluator error %v does not wrap ErrNoModel", cfg, evErr)
		}
		if evErr.Error() != msErr.Error() {
			t.Fatalf("%s: evaluator error %q, model set %q", cfg, evErr, msErr)
		}
	}
}

// TestEvaluatorSnapshotsModelSet documents that Compile is a snapshot:
// later mutations of the model set are not reflected.
func TestEvaluatorSnapshotsModelSet(t *testing.T) {
	ms := richWorld(t, nil)
	// P = 18 extrapolates class 1's M = 2 bin (fitted up to P = 16), so the
	// §4.1 adjustment participates in the estimate and removing it matters.
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 2}, {PEs: 8, Procs: 2}}}
	ev := ms.Compile(6400)
	before, err := ev.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ms.Adjust = nil // mutate after compilation
	after, err := ev.Estimate(cfg)
	if err != nil || after != before {
		t.Fatalf("compiled estimate changed after model-set mutation: %v -> %v (%v)", before, after, err)
	}
	fresh, err := ms.Compile(6400).Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == before {
		t.Fatal("mutation had no effect on a fresh compile; test is vacuous")
	}
}

// TestEvaluatorZeroAlloc asserts the compiled scoring path allocates
// nothing per candidate.
func TestEvaluatorZeroAlloc(t *testing.T) {
	ms := richWorld(t, nil)
	ev := ms.Compile(6400)
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 2}, {PEs: 4, Procs: 2}}}
	avg := testing.AllocsPerRun(1000, func() {
		if _, ok := ev.Tau(cfg); !ok {
			t.Fatal("unscorable")
		}
	})
	if avg != 0 {
		t.Fatalf("Tau allocates %.2f per call", avg)
	}
}
