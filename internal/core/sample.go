// Package core implements the paper's contribution: semi-empirical
// execution-time estimation models for heterogeneous clusters and the
// optimizer that uses them to pick the best PE configuration and process
// allocation.
//
// The model family follows §3 of the paper:
//
//   - N-T models (§3.2): per measured configuration (PE class, P, Mi),
//     Ta(N) = k0·N³ + k1·N² + k2·N + k3 and Tc(N) = k4·N² + k5·N + k6,
//     fit by linear least squares.
//   - P-T models (§3.3): per (PE class, Mi), integrating the N-T models over
//     the process count: Ta(N,P) = k7·Ra(N)/P + k8 and
//     Tc(N,P) = k9·P·Rc(N) + k10·Rc(N)/P + k11, where Ra/Rc are reference
//     curves taken from the N-T fits (see PTModel).
//   - Binning (§3.4): single-PE executions (P = Mi) use the N-T model;
//     multi-PE executions use the P-T model. Optional memory bins switch
//     model sets when the per-node memory requirement crosses a threshold.
//   - Model composition (§3.5): a class with too few PEs to measure P-T
//     models borrows another class's P-T models scaled by constant factors.
//   - Adjustment (§4.1): a linear transformation fit on a few large-N
//     measurements corrects the systematic deviation of configurations with
//     many co-resident processes (Mi ≥ 3).
package core

import (
	"errors"
	"fmt"

	"hetmodel/internal/cluster"
)

// ErrBadSamples reports an unusable training set.
var ErrBadSamples = errors.New("core: unusable sample set")

// ErrNoModel reports a missing model for a requested configuration.
var ErrNoModel = errors.New("core: no model for configuration")

// Sample is one measured HPL execution, reduced to the per-class critical
// times the models describe.
type Sample struct {
	// Config is the full cluster configuration of the run.
	Config cluster.Configuration
	// N is the problem size, P the total process count.
	N, P int
	// Class is the PE class this sample's times describe.
	Class int
	// M is the processes-per-PE of that class in the run.
	M int
	// Ta and Tc are the class's critical computation and communication
	// times (paper §3.2 decomposition).
	Ta, Tc float64
	// Wall is the run's total execution time.
	Wall float64
}

// Key identifies an N-T model's configuration bin. The JSON tags shape
// the "nt" entries of the persisted model file (unmarshal is
// case-insensitive, so files written before the tags still load).
type Key struct {
	Class int `json:"class"`
	P     int `json:"p"`
	M     int `json:"m"`
}

func (k Key) String() string { return fmt.Sprintf("class%d/P%d/M%d", k.Class, k.P, k.M) }

// PTKey identifies a P-T model's bin. The JSON tags shape the refit
// report's touched/changed lists on the /v1/refit wire format.
type PTKey struct {
	Class int `json:"class"`
	M     int `json:"m"`
}

func (k PTKey) String() string { return fmt.Sprintf("class%d/M%d", k.Class, k.M) }

// GroupByKey partitions samples into N-T bins.
func GroupByKey(samples []Sample) map[Key][]Sample {
	out := make(map[Key][]Sample)
	for _, s := range samples {
		k := Key{Class: s.Class, P: s.P, M: s.M}
		out[k] = append(out[k], s)
	}
	return out
}
