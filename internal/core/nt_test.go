package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hetmodel/internal/cluster"
)

// synthSample builds a sample from known generating laws.
func synthSample(class, p, m, n int, ta, tc float64) Sample {
	return Sample{
		Config: cluster.Configuration{Use: []cluster.ClassUse{{PEs: p / m, Procs: m}, {}}},
		N:      n, P: p, Class: class, M: m, Ta: ta, Tc: tc, Wall: ta + tc,
	}
}

// cubicLaw returns Ta with known coefficients.
func cubicLaw(k0, k1, k2, k3 float64) func(n float64) float64 {
	return func(n float64) float64 { return k0*n*n*n + k1*n*n + k2*n + k3 }
}

func quadLaw(k4, k5, k6 float64) func(n float64) float64 {
	return func(n float64) float64 { return k4*n*n + k5*n + k6 }
}

var paperNs = []int{400, 600, 800, 1200, 1600, 2400, 3200, 4800, 6400}

func TestFitNTRecoversCoefficients(t *testing.T) {
	ta := cubicLaw(5e-10, 2e-7, 3e-5, 0.4)
	tc := quadLaw(4e-8, 1e-5, 0.1)
	var samples []Sample
	for _, n := range paperNs {
		samples = append(samples, synthSample(0, 1, 1, n, ta(float64(n)), tc(float64(n))))
	}
	m, err := FitNT(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []float64{500, 2000, 9600} {
		if rel := math.Abs(m.Ta(n)-ta(n)) / ta(n); rel > 1e-6 {
			t.Fatalf("Ta(%v) rel err %v", n, rel)
		}
		if rel := math.Abs(m.Tc(n)-tc(n)) / tc(n); rel > 1e-6 {
			t.Fatalf("Tc(%v) rel err %v", n, rel)
		}
	}
	if est := m.Estimate(1000); math.Abs(est-(ta(1000)+tc(1000))) > 1e-9 {
		t.Fatalf("Estimate = %v", est)
	}
	if m.TaR2 < 0.999999 || m.TcR2 < 0.999999 {
		t.Fatalf("R²: %v %v", m.TaR2, m.TcR2)
	}
}

func TestFitNTValidation(t *testing.T) {
	if _, err := FitNT(nil); !errors.Is(err, ErrBadSamples) {
		t.Fatal("empty accepted")
	}
	// Mixed bins.
	s := []Sample{
		synthSample(0, 1, 1, 400, 1, 1),
		synthSample(0, 2, 1, 600, 1, 1),
	}
	if _, err := FitNT(s); !errors.Is(err, ErrBadSamples) {
		t.Fatal("mixed bins accepted")
	}
	// Duplicate N.
	s = []Sample{
		synthSample(0, 1, 1, 400, 1, 1),
		synthSample(0, 1, 1, 400, 2, 2),
	}
	if _, err := FitNT(s); !errors.Is(err, ErrBadSamples) {
		t.Fatal("duplicate N accepted")
	}
	// Too few sizes.
	s = []Sample{
		synthSample(0, 1, 1, 400, 1, 1),
		synthSample(0, 1, 1, 600, 1, 1),
		synthSample(0, 1, 1, 800, 1, 1),
	}
	if _, err := FitNT(s); !errors.Is(err, ErrBadSamples) {
		t.Fatal("3 sizes accepted (need 4)")
	}
}

func TestFitNTExactInterpolationFourPoints(t *testing.T) {
	// With exactly four sizes the fit interpolates: zero residual at the
	// training points — the zero-DoF fragility behind the paper's NS
	// failure.
	ta := cubicLaw(1e-9, 0, 0, 0)
	var samples []Sample
	for _, n := range []int{400, 800, 1200, 1600} {
		noisy := ta(float64(n)) + 0.1*math.Sin(float64(n)) // non-cubic wiggle
		samples = append(samples, synthSample(0, 1, 1, n, noisy, 0.01*float64(n)))
	}
	m, err := FitNT(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if math.Abs(m.Ta(float64(s.N))-s.Ta) > 1e-6 {
			t.Fatalf("four-point fit must interpolate at N=%d", s.N)
		}
	}
}

func TestFitAllNT(t *testing.T) {
	var samples []Sample
	ta := cubicLaw(1e-9, 1e-6, 1e-4, 0.1)
	tc := quadLaw(1e-8, 1e-6, 0.05)
	for _, bin := range []struct{ class, p, m int }{{0, 1, 1}, {0, 2, 2}, {1, 4, 1}} {
		for _, n := range paperNs {
			samples = append(samples, synthSample(bin.class, bin.p, bin.m, n, ta(float64(n)), tc(float64(n))))
		}
	}
	// One undersized bin that must be skipped.
	samples = append(samples, synthSample(1, 8, 1, 400, 1, 1))
	models, err := FitAllNT(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 3 {
		t.Fatalf("models = %d, want 3", len(models))
	}
	if _, ok := models[Key{Class: 1, P: 8, M: 1}]; ok {
		t.Fatal("undersized bin not skipped")
	}
}

func TestFitAllNTAllUndersized(t *testing.T) {
	samples := []Sample{synthSample(0, 1, 1, 400, 1, 1)}
	if _, err := FitAllNT(samples); !errors.Is(err, ErrBadSamples) {
		t.Fatal("all-undersized accepted")
	}
}

func TestKeyStrings(t *testing.T) {
	if (Key{1, 2, 3}).String() != "class1/P2/M3" {
		t.Fatal("Key string")
	}
	if (PTKey{1, 2}).String() != "class1/M2" {
		t.Fatal("PTKey string")
	}
}

// Property: N-T fits with ample sizes reproduce polynomial laws regardless
// of coefficients.
func TestFitNTRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := []float64{
			math.Abs(rng.NormFloat64()) * 1e-9,
			math.Abs(rng.NormFloat64()) * 1e-6,
			math.Abs(rng.NormFloat64()) * 1e-3,
			math.Abs(rng.NormFloat64()),
		}
		ta := cubicLaw(k[0], k[1], k[2], k[3])
		tc := quadLaw(k[1], k[2], k[3])
		var samples []Sample
		for _, n := range paperNs {
			samples = append(samples, synthSample(0, 1, 1, n, ta(float64(n)), tc(float64(n))))
		}
		m, err := FitNT(samples)
		if err != nil {
			return false
		}
		n := 9600.0
		return math.Abs(m.Ta(n)-ta(n)) < 1e-5*(1+ta(n)) &&
			math.Abs(m.Tc(n)-tc(n)) < 1e-5*(1+tc(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
