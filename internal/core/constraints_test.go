package core

import (
	"errors"
	"math/rand"
	"testing"

	"hetmodel/internal/cluster"
)

// multiClassWorld builds a model set with the given class count, every class
// measured at M = 1..3 on 1, 2 and 4 PEs (class c at speed factor 1+c/4),
// so grids over several classes have full coverage and a non-trivial τ
// landscape — the shape structural pruning needs exercising against.
func multiClassWorld(t *testing.T, classes int) *ModelSet {
	t.Helper()
	var samples []Sample
	for class := 0; class < classes; class++ {
		speed := 1 + float64(class)/4
		for m := 1; m <= 3; m++ {
			for _, pe := range []int{1, 2, 4} {
				p := pe * m
				for _, n := range []int{400, 800, 1600, 2400, 3200} {
					nf := float64(n)
					ta := 6e-10*nf*nf*nf/float64(p)*speed + 0.2
					tc := 1e-9 * nf * nf
					if pe > 1 {
						tc = 2e-9*nf*nf*float64(p) + 1e-8*nf*nf/float64(p) + 0.05
					}
					use := make([]cluster.ClassUse, classes)
					use[class] = cluster.ClassUse{PEs: pe, Procs: m}
					samples = append(samples, Sample{
						Config: cluster.Configuration{Use: use},
						N:      n, P: p, Class: class, M: m,
						Ta: ta, Tc: tc, Wall: ta + tc,
					})
				}
			}
		}
	}
	ms, err := Build(classes, samples)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

// multiClassSpace is a grid over the multiClassWorld model: per class,
// PE counts {0, 1, 2, 4} × process counts {1, 2, 3}, i.e. 10 canonical
// pairs per class.
func multiClassSpace(classes int) cluster.Space {
	s := cluster.Space{PEChoices: make([][]int, classes), ProcChoices: make([][]int, classes)}
	for ci := range s.PEChoices {
		s.PEChoices[ci] = []int{0, 1, 2, 4}
		s.ProcChoices[ci] = []int{1, 2, 3}
	}
	return s
}

// randomConstraints draws a constraint set spanning the structural cases:
// class subsets (including subsets that exclude every class), total-process
// caps from generous to unsatisfiable-on-most-shards, and per-PE memory caps
// bracketing the demand range of the spaces under test.
func randomConstraints(rng *rand.Rand, classes int, n float64) *Constraints {
	c := &Constraints{}
	if rng.Intn(2) == 0 {
		for ci := 0; ci < classes; ci++ {
			if rng.Intn(2) == 0 {
				c.Classes = append(c.Classes, ci)
			}
		}
		if len(c.Classes) == 0 && rng.Intn(2) == 0 {
			c.Classes = []int{rng.Intn(classes)} // single-class subset
		}
	}
	switch rng.Intn(3) {
	case 1:
		c.MaxTotalProcs = 1 + rng.Intn(8) // tight: excludes most candidates
	case 2:
		c.MaxTotalProcs = 8 + rng.Intn(24)
	}
	if rng.Intn(2) == 0 {
		// Per-PE demand over these spaces is M·8n²/P with M in 1..3 and P up
		// to a few dozen — caps around 8n² cut through the middle of it.
		c.MaxBytesPerPE = 8 * n * n * []float64{0.1, 0.5, 1.5, 4}[rng.Intn(4)]
	}
	return c
}

// TestConstrainedSearchMatchesFilterOracle is the tentpole's property test:
// a structurally constrained search — ranged, pruned, at several worker
// counts — is byte-identical to the unpruned search that applies the same
// constraints as their defining filter closure, over randomized spaces,
// constraints and partitions, including constraints that empty a shard or
// the whole grid.
func TestConstrainedSearchMatchesFilterOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, classes := range []int{1, 2, 3} {
		ms := multiClassWorld(t, classes)
		ev := ms.Compile(2400)
		grid, err := multiClassSpace(classes).Compile()
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 24; trial++ {
			cons := randomConstraints(rng, classes, 2400)
			k := 1 + rng.Intn(5)
			ranges := append([]IndexRange{{Lo: 0, Hi: grid.Size()}},
				randomPartition(rng, grid.Size(), 1+rng.Intn(3))...)
			for _, rr := range ranges {
				rr := rr
				var shard *IndexRange
				if rr.Lo != 0 || rr.Hi != grid.Size() {
					shard = &rr
				}
				want, wantErr := ev.Search(grid, SearchOptions{
					Workers: 1, TopK: k, NoPrune: true, Range: shard,
					Filter: cons.FilterFunc(2400, classes),
				})
				for _, workers := range []int{1, 2, 7} {
					for _, noprune := range []bool{false, true} {
						got, err := ev.Search(grid, SearchOptions{
							Workers: workers, TopK: k, NoPrune: noprune, Range: shard,
							Constraints: cons,
						})
						if (err == nil) != (wantErr == nil) {
							t.Fatalf("classes=%d trial=%d [%d,%d) w=%d noprune=%v cons=%+v: err %v, oracle err %v",
								classes, trial, rr.Lo, rr.Hi, workers, noprune, cons, err, wantErr)
						}
						if err != nil {
							continue
						}
						if rankedJSON(t, got.Best, got.BestIndex) != rankedJSON(t, want.Best, want.BestIndex) {
							t.Fatalf("classes=%d trial=%d [%d,%d) w=%d noprune=%v cons=%+v:\n got %s\nwant %s",
								classes, trial, rr.Lo, rr.Hi, workers, noprune, cons,
								rankedJSON(t, got.Best, got.BestIndex), rankedJSON(t, want.Best, want.BestIndex))
						}
						if got.Size != want.Size {
							t.Fatalf("classes=%d trial=%d: size %d vs oracle %d", classes, trial, got.Size, want.Size)
						}
						if got.Scored+got.Pruned != got.Size {
							t.Fatalf("classes=%d trial=%d cons=%+v: accounting %d scored + %d pruned != %d size",
								classes, trial, cons, got.Scored, got.Pruned, got.Size)
						}
					}
				}
			}
		}
	}
}

// TestConstraintsComposeWithFilter pins that Constraints and a user Filter
// compose (both must accept) and equal the conjoined closures.
func TestConstraintsComposeWithFilter(t *testing.T) {
	ms := multiClassWorld(t, 2)
	ev := ms.Compile(2400)
	grid, err := multiClassSpace(2).Compile()
	if err != nil {
		t.Fatal(err)
	}
	cons := &Constraints{MaxTotalProcs: 10}
	oddOnly := func(cfg cluster.Configuration) bool {
		p := 0
		for _, u := range cfg.Use {
			p += u.PEs * u.Procs
		}
		return p%2 == 1
	}
	want, err := ev.Search(grid, SearchOptions{
		Workers: 1, TopK: 4, NoPrune: true,
		Filter: andFilter(cons.FilterFunc(2400, 2), oddOnly),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Search(grid, SearchOptions{
		Workers: 2, TopK: 4, Constraints: cons, Filter: oddOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rankedJSON(t, got.Best, got.BestIndex) != rankedJSON(t, want.Best, want.BestIndex) {
		t.Fatalf("constraints+filter differ from conjoined closures:\n got %s\nwant %s",
			rankedJSON(t, got.Best, got.BestIndex), rankedJSON(t, want.Best, want.BestIndex))
	}
}

// TestConstraintsGuardedFallback pins the closure fallback: a memory-guarded
// evaluator has no dense tables, so structured constraints must run as their
// closure and still match the explicit-filter oracle.
func TestConstraintsGuardedFallback(t *testing.T) {
	guard := func(cfg cluster.Configuration, n float64) float64 { return 1 }
	ms := richWorld(t, guard)
	ev := ms.Compile(6400)
	grid, err := cluster.PaperEvaluationSpace().Compile()
	if err != nil {
		t.Fatal(err)
	}
	cons := &Constraints{Classes: []int{1}, MaxTotalProcs: 6}
	want, err := ev.Search(grid, SearchOptions{Workers: 1, TopK: 3, Filter: cons.FilterFunc(6400, 2)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Search(grid, SearchOptions{Workers: 1, TopK: 3, Constraints: cons})
	if err != nil {
		t.Fatal(err)
	}
	if rankedJSON(t, got.Best, got.BestIndex) != rankedJSON(t, want.Best, want.BestIndex) {
		t.Fatalf("guarded fallback differs:\n got %s\nwant %s",
			rankedJSON(t, got.Best, got.BestIndex), rankedJSON(t, want.Best, want.BestIndex))
	}
}

// TestConstraintsEmptyingSearch pins the edge the fleet cares about: a
// constraint set excluding every candidate errors on a full search (like an
// unscorable grid) but answers an empty Best on a shard.
func TestConstraintsEmptyingSearch(t *testing.T) {
	ms := multiClassWorld(t, 2)
	ev := ms.Compile(2400)
	grid, err := multiClassSpace(2).Compile()
	if err != nil {
		t.Fatal(err)
	}
	impossible := &Constraints{MaxBytesPerPE: 1} // one byte per PE: nothing fits
	if _, err := ev.Search(grid, SearchOptions{Workers: 1, Constraints: impossible}); !errors.Is(err, ErrNoModel) {
		t.Fatalf("full search under impossible constraints: err = %v, want ErrNoModel", err)
	}
	shard := IndexRange{Lo: 1, Hi: grid.Size() / 2}
	res, err := ev.Search(grid, SearchOptions{Workers: 1, Constraints: impossible, Range: &shard})
	if err != nil {
		t.Fatalf("emptied shard errored: %v", err)
	}
	if len(res.Best) != 0 {
		t.Fatalf("emptied shard returned %d candidates", len(res.Best))
	}
	if res.Scored+res.Pruned != res.Size {
		t.Fatalf("emptied shard accounting: %d + %d != %d", res.Scored, res.Pruned, res.Size)
	}
}

// TestConstraintsValidation pins the error cases shared with the serving
// layer: negative caps and out-of-range classes are rejected up front.
func TestConstraintsValidation(t *testing.T) {
	ms := multiClassWorld(t, 2)
	ev := ms.Compile(2400)
	grid, err := multiClassSpace(2).Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []*Constraints{
		{MaxTotalProcs: -1},
		{MaxBytesPerPE: -0.5},
		{Classes: []int{2}},
		{Classes: []int{-1}},
	} {
		if _, err := ev.Search(grid, SearchOptions{Workers: 1, Constraints: bad}); err == nil {
			t.Fatalf("constraints %+v accepted", bad)
		}
	}
	// A nil or zero Constraints restricts nothing.
	want, err := ev.Search(grid, SearchOptions{Workers: 1, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Search(grid, SearchOptions{Workers: 1, TopK: 2, Constraints: &Constraints{}})
	if err != nil {
		t.Fatal(err)
	}
	if rankedJSON(t, got.Best, got.BestIndex) != rankedJSON(t, want.Best, want.BestIndex) {
		t.Fatal("zero constraints changed the answer")
	}
}
