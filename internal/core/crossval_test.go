package core

import (
	"math"
	"testing"
)

func TestCrossValidateCleanWorld(t *testing.T) {
	// Noise-free cubic data: held-out predictions are essentially exact.
	samples := twoClassWorld()
	results, err := CrossValidateNT(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("nothing validated")
	}
	for _, r := range results {
		if len(r.HeldOut) != 9 {
			t.Fatalf("%v held out %d sizes, want 9", r.Key, len(r.HeldOut))
		}
		if r.MaxAbsTaErr > 1e-6 {
			t.Fatalf("%v max CV error %v on clean data", r.Key, r.MaxAbsTaErr)
		}
	}
	if WorstCVError(results) > 1e-6 {
		t.Fatal("worst error should be ~0 on clean data")
	}
}

func TestCrossValidateSkipsZeroDoFBins(t *testing.T) {
	// Exactly four sizes: unvalidatable (removing one leaves too few).
	var samples []Sample
	for _, n := range []int{400, 800, 1200, 1600} {
		nf := float64(n)
		samples = append(samples, synthSample(0, 1, 1, n, 1e-9*nf*nf*nf, 1e-8*nf*nf))
	}
	results, err := CrossValidateNT(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("zero-DoF bin validated: %v", results)
	}
	if WorstCVError(results) != 0 {
		t.Fatal("empty results should have zero worst error")
	}
}

func TestCrossValidateDetectsNonPolynomialStructure(t *testing.T) {
	// Data with a non-cubic component (rate ramp): cross-validation must
	// report a noticeably larger error at the extrapolation-prone
	// endpoints than the clean world's ~0.
	var samples []Sample
	for _, n := range paperNs {
		nf := float64(n)
		// A rational rate ramp: n³·(1 + c/(n+800)) is not expressible in
		// the cubic basis (unlike a plain 1 + c/n factor, which is).
		ta := 1e-9 * nf * nf * nf * (1 + 300/(nf+800))
		samples = append(samples, synthSample(0, 1, 1, n, ta, 1e-8*nf*nf))
	}
	results, err := CrossValidateNT(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	if results[0].MaxAbsTaErr < 1e-4 {
		t.Fatalf("CV failed to flag non-polynomial structure: %v", results[0].MaxAbsTaErr)
	}
	// Errors are finite and recorded per held-out size.
	for i, e := range results[0].TaErr {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("bad error at %d: %v", i, e)
		}
	}
}

func TestMedianCVError(t *testing.T) {
	results, err := CrossValidateNT(twoClassWorld())
	if err != nil {
		t.Fatal(err)
	}
	if MedianCVError(results) > 1e-6 {
		t.Fatal("clean world median error should be ~0")
	}
	for _, r := range results {
		if r.MedianAbsTaErr > r.MaxAbsTaErr {
			t.Fatalf("median exceeds max: %+v", r)
		}
	}
	if MedianCVError(nil) != 0 {
		t.Fatal("empty results should give 0")
	}
}
