package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"hetmodel/internal/cluster"
	"hetmodel/internal/parallel"
)

// searchRangeV1 is the recursive closure-based walker the iterative odometer
// kernel replaced, kept verbatim as the reference implementation (it never
// used its former Evaluator receiver). The bit-identity tests below prove
// the new kernel offers exactly the same (index, τ) stream, so the v1
// semantics survive in the production walker.
func searchRangeV1(grid *cluster.Grid, t *gridTables, lo, hi, emptyIdx int64,
	prune bool, filter func(cfg cluster.Configuration) bool,
	bound func() float64, offer func(idx int64, tau float64)) (scored, pruned int64) {
	classes := grid.Classes()
	digits := make([]int, classes)
	var fcfg cluster.Configuration
	if filter != nil {
		fcfg = cluster.Configuration{Use: make([]cluster.ClassUse, classes)}
	}
	var walk func(depth int, base int64, curMax float64)
	walk = func(depth int, base int64, curMax float64) {
		if depth == classes {
			if base == emptyIdx {
				return
			}
			if filter != nil {
				for ci, j := range digits {
					fcfg.Use[ci] = grid.Pairs(ci)[j]
				}
				if !filter(fcfg) {
					scored++
					return
				}
			}
			// Leaf: P and τ from the digit contributions.
			p := 0
			for ci, j := range digits {
				p += t.pw[ci][j]
			}
			tau := math.Inf(-1)
			for ci, j := range digits {
				row := t.contrib[ci][j]
				if row == nil {
					continue // unused class
				}
				v := row[p]
				if math.IsNaN(v) {
					scored++
					return // unscorable candidate, skipped like Optimize does
				}
				if v > tau {
					tau = v
				}
			}
			scored++
			offer(base, tau)
			return
		}
		stride := grid.Stride(depth)
		pairs := grid.Pairs(depth)
		for j := range pairs {
			s := base + int64(j)*stride
			e := s + stride
			if e <= lo || s >= hi {
				continue
			}
			b := curMax
			if v := t.lb[depth][j]; v > b {
				b = v
			}
			if prune && b > bound() {
				olo, ohi := s, e
				if olo < lo {
					olo = lo
				}
				if ohi > hi {
					ohi = hi
				}
				pruned += ohi - olo
				if olo <= emptyIdx && emptyIdx < ohi {
					pruned--
				}
				continue
			}
			digits[depth] = j
			walk(depth+1, s, b)
		}
	}
	walk(0, 0, math.Inf(-1))
	return scored, pruned
}

// v1Offers runs the reference walker unpruned over [lo, hi) and returns its
// complete offer stream sorted by the (τ, index) ranking — with pruning off
// that stream is every scorable, filter-passing candidate with its exact τ.
func v1Offers(grid *cluster.Grid, t *gridTables, lo, hi, emptyIdx int64,
	filter func(cfg cluster.Configuration) bool) (offers []parallel.Candidate, scored int64) {
	scored, _ = searchRangeV1(grid, t, lo, hi, emptyIdx, false, filter,
		func() float64 { return math.Inf(1) },
		func(idx int64, tau float64) {
			if !math.IsInf(tau, 1) && !math.IsNaN(tau) { // what TopK would keep
				offers = append(offers, parallel.Candidate{Index: idx, Score: tau})
			}
		})
	sort.Slice(offers, func(i, j int) bool {
		if offers[i].Score != offers[j].Score {
			return offers[i].Score < offers[j].Score
		}
		return offers[i].Index < offers[j].Index
	})
	return offers, scored
}

// TestKernelOffersBitIdenticalToV1 is the replacement proof: over the paper
// grid, randomized grids and the tie-heavy grid — full range and random
// sub-ranges, with and without a filter — an unpruned v2 search returning
// every candidate (TopK = Size) reproduces the v1 walker's offer stream bit
// for bit: same indices, same Float64bits of every τ, same scored count.
func TestKernelOffersBitIdenticalToV1(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	worlds := map[string]*ModelSet{"rich": richWorld(t, nil), "ties": tieWorld(t)}
	serveFilter := (&Constraints{MaxTotalProcs: 9}).FilterFunc(6400, 2)
	for name, ms := range worlds {
		for si, space := range evalSpaces() {
			grid, err := space.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if grid.Size() == 0 {
				continue
			}
			for _, n := range []float64{2400, 6400} {
				ev := ms.Compile(n)
				tbl := ev.tables(grid)
				if tbl == nil {
					t.Fatalf("%s space %d: no dense tables", name, si)
				}
				emptyIdx := emptyIndex(grid)
				ranges := []IndexRange{{Lo: 0, Hi: grid.Size()}}
				for i := 0; i < 3; i++ {
					lo := rng.Int63n(grid.Size() + 1)
					hi := lo + rng.Int63n(grid.Size()+1-lo)
					ranges = append(ranges, IndexRange{Lo: lo, Hi: hi})
				}
				for _, filter := range []func(cluster.Configuration) bool{nil, serveFilter} {
					for _, rr := range ranges {
						rr := rr
						want, wantScored := v1Offers(grid, tbl, rr.Lo, rr.Hi, emptyIdx, filter)
						k := int(grid.Size()) // >= count of scorable candidates
						got, err := ev.Search(grid, SearchOptions{
							Workers: 1, TopK: k, NoPrune: true, Range: &rr, Filter: filter,
						})
						if err != nil {
							if len(want) == 0 {
								continue // both agree: nothing scorable
							}
							t.Fatalf("%s space %d n=%v [%d,%d): v2 failed (%v), v1 offered %d",
								name, si, n, rr.Lo, rr.Hi, err, len(want))
						}
						if len(got.Best) != len(want) {
							t.Fatalf("%s space %d n=%v [%d,%d): v2 offered %d candidates, v1 %d",
								name, si, n, rr.Lo, rr.Hi, len(got.Best), len(want))
						}
						for i := range want {
							if got.BestIndex[i] != want[i].Index ||
								math.Float64bits(got.Best[i].Tau) != math.Float64bits(want[i].Score) {
								t.Fatalf("%s space %d n=%v [%d,%d) rank %d: v2 (%d, %x) vs v1 (%d, %x)",
									name, si, n, rr.Lo, rr.Hi, i,
									got.BestIndex[i], math.Float64bits(got.Best[i].Tau),
									want[i].Index, math.Float64bits(want[i].Score))
							}
						}
						if got.Scored != wantScored {
							t.Fatalf("%s space %d n=%v [%d,%d): v2 scored %d, v1 %d (both unpruned)",
								name, si, n, rr.Lo, rr.Hi, got.Scored, wantScored)
						}
					}
				}
			}
		}
	}
}

// TestKernelPrunedMatchesV1Pruned compares the two walkers with their own
// pruning on: a v1 sequential engine (private top-K threshold bound, as the
// pre-SharedThreshold Search ran per worker) against the v2 kernel at
// several worker counts. Both prune with strict compares, so both must land
// on the identical ranked answer.
func TestKernelPrunedMatchesV1Pruned(t *testing.T) {
	for name, ms := range map[string]*ModelSet{"rich": richWorld(t, nil), "ties": tieWorld(t)} {
		for si, space := range evalSpaces() {
			grid, err := space.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if grid.Size() < 2 {
				continue
			}
			ev := ms.Compile(6400)
			tbl := ev.tables(grid)
			emptyIdx := emptyIndex(grid)
			for _, k := range []int{1, 3} {
				topk := parallel.NewTopK(k)
				scored, pruned := searchRangeV1(grid, tbl, 0, grid.Size(), emptyIdx, true, nil,
					topk.Threshold, func(idx int64, tau float64) { topk.Offer(idx, tau) })
				want := topk.Sorted()
				if scored+pruned != grid.Size()-boolToInt64(emptyIdx >= 0) {
					t.Fatalf("%s space %d k=%d: v1 accounting %d+%d != %d",
						name, si, k, scored, pruned, grid.Size())
				}
				for _, workers := range []int{1, 2, 7} {
					got, err := ev.Search(grid, SearchOptions{Workers: workers, TopK: k})
					if err != nil {
						if len(want) == 0 {
							continue
						}
						t.Fatalf("%s space %d k=%d w=%d: %v", name, si, k, workers, err)
					}
					if len(got.Best) != len(want) {
						t.Fatalf("%s space %d k=%d w=%d: %d results, v1 %d",
							name, si, k, workers, len(got.Best), len(want))
					}
					for i := range want {
						if got.BestIndex[i] != want[i].Index ||
							math.Float64bits(got.Best[i].Tau) != math.Float64bits(want[i].Score) {
							t.Fatalf("%s space %d k=%d w=%d rank %d: (%d, %x) vs v1 (%d, %x)",
								name, si, k, workers, i,
								got.BestIndex[i], math.Float64bits(got.Best[i].Tau),
								want[i].Index, math.Float64bits(want[i].Score))
						}
					}
				}
			}
		}
	}
}

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// TestKernelConstraintsRangeMatchesV1 extends the oracle to the composition
// the fleet layer actually ships: structural Constraints stacked on a shard
// Range. The v1 walker has no structural path — it sees the constraints only
// as their FilterFunc closure, the documented semantic ground truth — so
// agreement here proves the walker's per-(class, pair) exclusion masks and
// prefix/suffix cap checks remove exactly the closure-rejected candidates
// inside an arbitrary sub-range, with global indices and τ bits intact.
func TestKernelConstraintsRangeMatchesV1(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	worlds := map[string]*ModelSet{"rich": richWorld(t, nil), "ties": tieWorld(t)}
	consSet := []*Constraints{
		{MaxTotalProcs: 9},
		{Classes: []int{0}, MaxTotalProcs: 6},
		{MaxBytesPerPE: 8e7},
		{Classes: []int{0, 1}, MaxTotalProcs: 12, MaxBytesPerPE: 1.2e8},
	}
	const n = 6400.0
	for name, ms := range worlds {
		for si, space := range evalSpaces() {
			grid, err := space.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if grid.Size() == 0 {
				continue
			}
			ev := ms.Compile(n)
			tbl := ev.tables(grid)
			if tbl == nil {
				t.Fatalf("%s space %d: no dense tables", name, si)
			}
			emptyIdx := emptyIndex(grid)
			ranges := []IndexRange{{Lo: 0, Hi: grid.Size()}}
			for i := 0; i < 3; i++ {
				lo := rng.Int63n(grid.Size() + 1)
				hi := lo + rng.Int63n(grid.Size()+1-lo)
				ranges = append(ranges, IndexRange{Lo: lo, Hi: hi})
			}
			for ci, cons := range consSet {
				filter := cons.FilterFunc(n, grid.Classes())
				for _, rr := range ranges {
					rr := rr
					want, _ := v1Offers(grid, tbl, rr.Lo, rr.Hi, emptyIdx, filter)
					got, err := ev.Search(grid, SearchOptions{
						Workers: 1, TopK: int(grid.Size()), NoPrune: true,
						Range: &rr, Constraints: cons,
					})
					if err != nil {
						if len(want) == 0 {
							continue // both agree: nothing admissible in range
						}
						t.Fatalf("%s space %d cons %d [%d,%d): v2 failed (%v), v1 offered %d",
							name, si, ci, rr.Lo, rr.Hi, err, len(want))
					}
					if len(got.Best) != len(want) {
						t.Fatalf("%s space %d cons %d [%d,%d): v2 offered %d candidates, v1 %d",
							name, si, ci, rr.Lo, rr.Hi, len(got.Best), len(want))
					}
					for i := range want {
						if got.BestIndex[i] != want[i].Index ||
							math.Float64bits(got.Best[i].Tau) != math.Float64bits(want[i].Score) {
							t.Fatalf("%s space %d cons %d [%d,%d) rank %d: v2 (%d, %x) vs v1 (%d, %x)",
								name, si, ci, rr.Lo, rr.Hi, i,
								got.BestIndex[i], math.Float64bits(got.Best[i].Tau),
								want[i].Index, math.Float64bits(want[i].Score))
						}
					}
					// Structural exclusion moves rejections from Scored to
					// Pruned, so only the sum is comparable across the two.
					if got.Scored+got.Pruned != got.Size {
						t.Fatalf("%s space %d cons %d [%d,%d): accounting %d+%d vs size %d",
							name, si, ci, rr.Lo, rr.Hi, got.Scored, got.Pruned, got.Size)
					}
				}
			}
		}
	}
}
