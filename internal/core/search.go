package core

import (
	"fmt"
	"math"

	"hetmodel/internal/cluster"
	"hetmodel/internal/parallel"
)

// SearchOptions tunes the streaming configuration search.
type SearchOptions struct {
	// Workers bounds the concurrency (<= 0 selects GOMAXPROCS, 1 forces a
	// sequential scan). The winners are identical at any setting.
	Workers int
	// TopK selects how many best candidates to return (<= 0 means 1).
	TopK int
	// NoPrune disables the lower-bound subtree pruning. Pruning never
	// changes the returned candidates — it only skips subtrees whose bound
	// proves they rank strictly worse than results already in hand — so
	// this switch exists for benchmarking and for the equivalence tests.
	// Structural constraint exclusions (see Constraints) are not bounds and
	// stay active: they define the candidate set, they do not approximate it.
	NoPrune bool
	// Range, when non-nil, restricts the search to the grid indices in
	// [Lo, Hi). Ranking, pruning and filtering are unchanged — candidates
	// keep their global grid indices — so the union of disjoint ranges
	// covering the grid scores exactly the candidates of a full search, and
	// merging per-range results with parallel.MergeTopK reproduces the full
	// search's top-K bit for bit (the fleet layer's shard/merge invariant).
	// Unlike a full search, a range holding no scorable candidate is not an
	// error: it returns an empty Best, because a shard of a scorable grid
	// can legitimately be barren.
	Range *IndexRange
	// Filter, when non-nil, restricts the search to candidates for which it
	// returns true. The filter must be a pure function of the configuration:
	// it runs concurrently from every worker and its verdict, like τ, must
	// not depend on scheduling. Filtering composes soundly with pruning
	// because both only remove candidates — a pruned subtree holds no
	// candidate that could outrank an already-offered (filter-passing) one.
	// The configuration passed in shares a per-worker buffer; the filter
	// must not retain it. Prefer Constraints for the structured rules the
	// serving layer uses — a closure forces every candidate to be decoded
	// and visited, Constraints prune structurally.
	Filter func(cfg cluster.Configuration) bool
	// Constraints, when non-nil and non-zero, restrict the candidate set to
	// configurations the equivalent FilterFunc closure accepts — but the
	// walker enforces them structurally: disallowed (class, pair) choices
	// zero their subtrees, the total-process cap prunes on prefix-P plus
	// minimum suffix-P, and the per-PE memory bound excludes pairs and
	// subtrees by exact corner bounds. Results are bit-identical to passing
	// FilterFunc as Filter; Constraints and Filter compose (both must
	// accept). On the per-candidate fallback path (no dense tables) the
	// constraints run as their closure.
	Constraints *Constraints
}

// IndexRange is a half-open interval [Lo, Hi) of grid indices. The fleet
// layer partitions a grid into disjoint ranges, one per member planner.
type IndexRange struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

// SearchResult is the outcome of a streaming search.
type SearchResult struct {
	// Best holds the TopK best candidates, best first, ties broken toward
	// the earlier enumeration position. Err is nil on every entry.
	Best []Estimate
	// BestIndex holds the global grid index of each Best entry. The
	// (Tau, BestIndex) pairs are what a cross-process merge ranks on:
	// parallel.MergeTopK over per-shard pairs reproduces the unsharded
	// ranking exactly.
	BestIndex []int64
	// Size is the number of distinct candidates in the searched range (the
	// all-unused configuration excluded); disjoint ranges covering the grid
	// have Sizes summing to the full search's.
	Size int64
	// Scored counts candidates actually visited (including ones a Filter or
	// a leaf-level scorability check rejected); Pruned counts candidates
	// skipped wholesale — by the τ lower bounds or by structural constraint
	// exclusion. Scored+Pruned == Size always; with pruning and multiple
	// workers the split between the two depends on timing (the results
	// never do).
	Scored, Pruned int64
}

// OptimizeSpace searches a configuration space at problem size n without
// materializing the candidate slice: the space is compiled to a grid, the
// model set to an evaluator, and grid indices are streamed through a
// sharded search with deterministic lowest-index tie-breaking. The winner
// is identical to Optimize over space.Enumerate(), at any worker count,
// with pruning on or off.
func (ms *ModelSet) OptimizeSpace(space cluster.Space, n int, opts SearchOptions) (*SearchResult, error) {
	grid, err := space.Compile()
	if err != nil {
		return nil, err
	}
	return ms.Compile(float64(n)).Search(grid, opts)
}

// maxGridTableP bounds the per-(class, M, P) contribution tables: a space
// whose total process count exceeds this falls back to per-candidate
// evaluation (still streamed and sharded, but without pruning bounds).
const maxGridTableP = 1 << 16

// gridTables holds the per-grid dense precomputation the walker reads: for
// every class and distinct process count M, the class contribution to τ at
// every achievable total process count P; per (class, pair) the pair's
// process weight and a lower bound on its contribution; and per depth the
// suffix accumulators that bound what the remaining classes can still do.
type gridTables struct {
	// pw[ci][j] is the process count pair j of class ci contributes to P.
	pw [][]int
	// contrib[ci][j][P] is the class contribution; NaN marks "no model".
	// nil for unused pairs (they contribute nothing). Pairs of one class
	// with equal Procs share one row: the contribution depends only on
	// (class, M, P), and a leaf always reads the row at a total P covering
	// the pair's own process weight, so the rows' low-P entries (below the
	// sharing pair's weight) are never consulted on its behalf.
	contrib [][][]float64
	// lb[ci][j] is min over P >= pw[ci][j] of contrib (the τ lower bound of
	// any candidate using the pair); -Inf for unused pairs, +Inf when no P
	// is scorable.
	lb [][]float64
	// winmin[ci][j][p] is min over q in [p, p+W] of contrib[ci][j][q] (NaN
	// entries ignored, +Inf when none are scorable, window clamped to maxP),
	// where W = sufMaxP[ci+1]-sufMinP[ci+1] is the process-count spread the
	// classes after ci can add. A class sits at exactly one odometer depth,
	// so one window width per class suffices; shared per (class, M) like
	// contrib, nil for unused pairs. The walker evaluates it at the
	// subtree's minimum reachable total P — prefix P + pair weight + the
	// remaining classes' minimum weight — so the window spans exactly the
	// total process counts the subtree's leaves can reach, a per-subtree
	// bound far sharper than the static lb (the same row's minimum over
	// every P the pair could ever see).
	winmin [][][]float64
	// colmin[ci][q] aggregates winmin across the class's scorable pairs:
	// min over every pair j with a contribution row of winmin[ci][j][q+pw],
	// where q is the subtree's minimum reachable total P before choosing
	// the class's pair. One compare at node entry against colmin bounds all
	// of the class's scorable pairs at once — when it exceeds the shared
	// threshold, the walker skips the whole contiguous run of non-zero
	// pairs and only descends the zero pair (whose subtree the prefix and
	// suffix bounds still govern). Entries whose q+pw would exceed maxP are
	// unreachable at the class's depth and excluded from the min.
	colmin [][]float64
	// firstNZ[ci] is the index of the class's first pair with a
	// contribution row. Zero pairs sort first in the canonical pair order,
	// so [firstNZ, np) is exactly the contiguous run colmin covers.
	firstNZ []int
	// procs[ci][j], strides[ci] and np[ci] mirror the grid's pair process
	// counts, strides and pair counts in flat arrays, so the walk's hot loops
	// touch no grid accessors.
	procs   [][]int
	strides []int64
	np      []int
	// maxP is the maximum achievable total process count of the grid.
	maxP int
	// Suffix accumulators over classes >= d (entry len(classes) covers the
	// empty suffix): sufLB[d] is the unavoidable τ contribution of the
	// remaining classes — the max over those classes of their cheapest
	// pair's lb — and sufMinP/sufMaxP the minimum and maximum process count
	// the remaining classes can add.
	sufLB   []float64
	sufMinP []int
	sufMaxP []int
}

func (ev *Evaluator) compileGrid(grid *cluster.Grid) *gridTables {
	classes := grid.Classes()
	t := &gridTables{
		pw:      make([][]int, classes),
		contrib: make([][][]float64, classes),
		winmin:  make([][][]float64, classes),
		lb:      make([][]float64, classes),
		procs:   make([][]int, classes),
		strides: make([]int64, classes),
		np:      make([]int, classes),
	}
	for ci := 0; ci < classes; ci++ {
		pairs := grid.Pairs(ci)
		t.pw[ci] = make([]int, len(pairs))
		t.procs[ci] = make([]int, len(pairs))
		t.strides[ci] = grid.Stride(ci)
		t.np[ci] = len(pairs)
		maxPW := 0
		for j, u := range pairs {
			t.pw[ci][j] = u.PEs * u.Procs
			t.procs[ci][j] = u.Procs
			if t.pw[ci][j] > maxPW {
				maxPW = t.pw[ci][j]
			}
		}
		t.maxP += maxPW
	}
	if t.maxP > maxGridTableP {
		return nil
	}
	// The suffix process-count envelopes need only the pair weights, and the
	// rows pass below needs them to size each class's lookahead window.
	t.sufMinP = make([]int, classes+1)
	t.sufMaxP = make([]int, classes+1)
	for ci := classes - 1; ci >= 0; ci-- {
		minPW, maxPW := 0, 0
		for j, w := range t.pw[ci] {
			if j == 0 || w < minPW {
				minPW = w
			}
			if w > maxPW {
				maxPW = w
			}
		}
		t.sufMinP[ci] = t.sufMinP[ci+1] + minPW
		t.sufMaxP[ci] = t.sufMaxP[ci+1] + maxPW
	}
	// windowMin's deque and NaN-clean scratch are sized once and shared by
	// every row: each call fully overwrites what it reads.
	winScratch := make([]float64, t.maxP+1)
	winDeque := make([]int, 0, t.maxP+1)
	for ci := 0; ci < classes; ci++ {
		pairs := grid.Pairs(ci)
		t.contrib[ci] = make([][]float64, len(pairs))
		t.winmin[ci] = make([][]float64, len(pairs))
		t.lb[ci] = make([]float64, len(pairs))
		maxM := 0
		for _, u := range pairs {
			if u.Procs > maxM {
				maxM = u.Procs
			}
		}
		// One row per distinct M, shared by every pair running M processes
		// per PE; each pair's lb is the row's suffix minimum at the pair's
		// own process weight (the smallest P a candidate using it can have),
		// and its windowed minima span the later classes' weight spread.
		width := t.sufMaxP[ci+1] - t.sufMinP[ci+1]
		rows := make([][]float64, maxM+1)
		mins := make([][]float64, maxM+1)
		wins := make([][]float64, maxM+1)
		for j, u := range pairs {
			if u.PEs == 0 {
				t.lb[ci][j] = math.Inf(-1)
				continue
			}
			if rows[u.Procs] == nil {
				rows[u.Procs], mins[u.Procs] = ev.compileRow(ci, u.Procs, t.maxP)
				wins[u.Procs] = windowMin(rows[u.Procs], width, winScratch, winDeque)
			}
			t.contrib[ci][j] = rows[u.Procs]
			t.winmin[ci][j] = wins[u.Procs]
			t.lb[ci][j] = mins[u.Procs][t.pw[ci][j]]
		}
	}
	t.colmin = make([][]float64, classes)
	t.firstNZ = make([]int, classes)
	for ci := 0; ci < classes; ci++ {
		fnz := len(t.winmin[ci])
		for j := range t.winmin[ci] {
			if t.winmin[ci][j] != nil {
				fnz = j
				break
			}
		}
		t.firstNZ[ci] = fnz
		col := make([]float64, t.maxP+1)
		inf := math.Inf(1)
		for q := range col {
			col[q] = inf
		}
		// Pair-major accumulation: each pair folds its shifted winmin row
		// into col with a branch-free reachability bound (q + pw <= maxP
		// becomes the loop limit), instead of re-testing every pair per q.
		for j := fnz; j < len(t.winmin[ci]); j++ {
			wm := t.winmin[ci][j]
			pwj := t.pw[ci][j]
			for q := 0; q+pwj <= t.maxP; q++ {
				if v := wm[q+pwj]; v < col[q] {
					col[q] = v
				}
			}
		}
		t.colmin[ci] = col
	}
	t.sufLB = make([]float64, classes+1)
	t.sufLB[classes] = math.Inf(-1)
	for ci := classes - 1; ci >= 0; ci-- {
		minLB := math.Inf(1)
		for j := range grid.Pairs(ci) {
			if t.lb[ci][j] < minLB {
				minLB = t.lb[ci][j]
			}
		}
		t.sufLB[ci] = t.sufLB[ci+1]
		if minLB > t.sufLB[ci] {
			t.sufLB[ci] = minLB
		}
	}
	return t
}

// windowMin computes out[p] = min over q in [p, min(p+w, len(row)-1)] of
// row[q], with NaN entries ignored (+Inf when the whole window is NaN) — the
// sliding-window minimum the walker reads as a subtree bound. Monotone-deque
// scan, O(len(row)) regardless of w. xbuf (len >= len(row)) and dqbuf
// (cap >= len(row)) are caller-owned scratch, fully overwritten here, so one
// grid compile allocates them once across all its rows.
func windowMin(row []float64, w int, xbuf []float64, dqbuf []int) []float64 {
	n := len(row)
	out := make([]float64, n)
	x := xbuf[:n]
	for i, v := range row {
		if math.IsNaN(v) {
			x[i] = math.Inf(1)
		} else {
			x[i] = v
		}
	}
	// dq holds indices of the current window [i, i+w] whose values strictly
	// increase front to back; dq[0] is the window minimum. Iterating i
	// downward mirrors the classic rightward sliding window.
	dq := dqbuf[:0]
	for i := n - 1; i >= 0; i-- {
		for len(dq) > 0 && x[dq[len(dq)-1]] >= x[i] {
			dq = dq[:len(dq)-1]
		}
		dq = append(dq, i)
		for dq[0] > i+w {
			dq = dq[1:]
		}
		out[i] = x[dq[0]]
	}
	return out
}

// seedScratch holds the probe buffers seedThreshold reuses across calls, so
// steady-state SearchReuse stays allocation-free.
type seedScratch struct {
	cur []int
	tk  *parallel.TopK
}

// seedThreshold publishes an upper bound on the grid's k-th best τ before
// the walk starts, so subtree pruning bites from the first node instead of
// waiting for the index-ordered odometer to reach competitive candidates.
// The probe set is deterministic coordinate descent over the contribution
// tables: starting from every class at its lightest scorable pair, each
// class in turn tries its whole pair list (including the zero pair) while
// the others hold still, moves to the strict best, and the sweep repeats
// until a full round improves nothing. Every probe is the exact τ of a real
// grid point, computed with leafRun's arithmetic and offered into a scratch
// selection under its grid ordinal — deduplicated via Contains, since one
// configuration filling two slots would push the scratch k-th below the
// true subset k-th. Only the shared threshold is seeded, never the result
// top-K: the probes are re-scored by the walk like any candidate, Offer
// acceptance is untouched, and pruning stays a strict compare against a
// value that upper-bounds the final k-th best (the k-th best of a candidate
// subset), so the ranked results are bit-identical to an unseeded search.
// Callers gate on the unrestricted candidate set — a range, filter or
// constraint could exclude probes while keeping worse-τ candidates in its
// top K, turning the seed into an under-bound. With fewer than k scorable
// probes the threshold stays +Inf.
func seedThreshold(t *gridTables, s *seedScratch, k int, shared *parallel.SharedThreshold) {
	classes := len(t.np)
	if cap(s.cur) < classes {
		s.cur = make([]int, classes)
	}
	cur := s.cur[:classes]
	if s.tk == nil || s.tk.K() != k {
		s.tk = parallel.NewTopK(k)
	} else {
		s.tk.Reset()
	}
	curP := 0
	for ci := 0; ci < classes; ci++ {
		j := t.firstNZ[ci]
		if j >= t.np[ci] {
			j = 0 // no scorable pair: the class sits at its zero pair
		}
		cur[ci] = j
		curP += t.pw[ci][j]
	}
	// seedRounds caps the sweeps so a long descent chain cannot rival the
	// walk it is meant to accelerate; descent usually converges in two.
	const seedRounds = 4
	curTau := math.Inf(1)
	for round := 0; round < seedRounds; round++ {
		improved := false
		for c := 0; c < classes; c++ {
			bestJ := cur[c]
			for j := 0; j < t.np[c]; j++ {
				p := curP - t.pw[c][cur[c]] + t.pw[c][j]
				tau := math.Inf(-1)
				ok := true
				for ci := 0; ci < classes; ci++ {
					jj := cur[ci]
					if ci == c {
						jj = j
					}
					row := t.contrib[ci][jj]
					if row == nil {
						continue
					}
					v := row[p]
					if math.IsNaN(v) {
						ok = false
						break
					}
					if v > tau {
						tau = v
					}
				}
				// Unscorable probes and the no-rows (empty) configuration
				// seed nothing and never become the descent point.
				if !ok || math.IsInf(tau, -1) {
					continue
				}
				ord := int64(0)
				for ci := 0; ci < classes; ci++ {
					jj := cur[ci]
					if ci == c {
						jj = j
					}
					ord += int64(jj) * t.strides[ci]
				}
				if !s.tk.Contains(ord) {
					s.tk.Offer(ord, tau)
				}
				if tau < curTau {
					curTau, bestJ = tau, j
				}
			}
			if bestJ != cur[c] {
				curP += t.pw[c][bestJ] - t.pw[c][cur[c]]
				cur[c] = bestJ
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	shared.Update(s.tk.Threshold())
}

// compileRow fills the dense contribution row of one (class, M) bin over
// P in [0, maxP] — NaN below M and wherever the model has no entry, the
// N-T estimate at P == M, the P-T formula beyond — plus the row's suffix
// minima (min over q >= p, NaN ignored, +Inf when empty), from which each
// pair sharing the row derives its lower bound. The P-T coefficients are
// hoisted out of the loop; the per-entry arithmetic is classTau's exact
// operation sequence, so rows are bit-identical to per-candidate scoring.
func (ev *Evaluator) compileRow(class, m, maxP int) (row, sufMin []float64) {
	row = make([]float64, maxP+1)
	for p := range row {
		row[p] = math.NaN()
	}
	if nt := ev.nt[class]; m < len(nt) && m <= maxP {
		row[m] = nt[m] // NaN already marks a missing single-PE bin
	}
	if pt := ev.pt[class]; m < len(pt) {
		e := &pt[m]
		if e.ok {
			for p := m + 1; p <= maxP; p++ {
				pf := float64(p)
				ta := e.taScale * (e.a0/pf + e.ka1)
				tc := e.tcScale * (e.kc0*pf*e.rc + e.c1/pf + e.kc2)
				if e.adjust && (e.extrapAll || p > e.maxFitP) {
					tc = e.adjA*tc + e.adjB
					if tc < 0 {
						tc = 0
					}
				}
				row[p] = ta + tc
			}
		}
	}
	sufMin = make([]float64, maxP+2)
	min := math.Inf(1)
	sufMin[maxP+1] = min
	for p := maxP; p >= 0; p-- {
		if v := row[p]; !math.IsNaN(v) && v < min {
			min = v
		}
		sufMin[p] = min
	}
	return row, sufMin
}

// gridTablesEntry is the one-slot cache mapping a grid (by pointer) to its
// compiled tables; t is nil when the grid exceeds maxGridTableP.
type gridTablesEntry struct {
	grid *cluster.Grid
	t    *gridTables
}

// tables returns the grid's compiled tables, reusing the evaluator's cached
// slot when the same grid searches again (the planner's steady state: one
// long-lived grid, many queries). compileGrid is a pure function of
// (evaluator, grid), so a racing recompute stores an identical value and
// determinism is unaffected.
func (ev *Evaluator) tables(grid *cluster.Grid) *gridTables {
	if e := ev.tcache.Load(); e != nil && e.grid == grid {
		return e.t
	}
	t := ev.compileGrid(grid)
	ev.tcache.Store(&gridTablesEntry{grid: grid, t: t})
	return t
}

// emptyIndex returns the grid index of the all-unused configuration, or -1
// when the grid has none. The zero pair sorts first in every class, so when
// present the empty configuration is always index 0.
func emptyIndex(grid *cluster.Grid) int64 {
	if grid.Size() == 0 {
		return -1
	}
	for ci := 0; ci < grid.Classes(); ci++ {
		pairs := grid.Pairs(ci)
		if len(pairs) == 0 || pairs[0].PEs != 0 {
			return -1
		}
	}
	return 0
}

// Search streams every candidate of the grid through the evaluator and
// returns the TopK best. See OptimizeSpace for the determinism contract.
func (ev *Evaluator) Search(grid *cluster.Grid, opts SearchOptions) (*SearchResult, error) {
	classes := grid.Classes()
	if classes != ev.classes {
		return nil, fmt.Errorf("%w: space has %d classes, model set has %d", ErrNoModel, classes, ev.classes)
	}
	k := opts.TopK
	if k <= 0 {
		k = 1
	}
	rlo, rhi := int64(0), grid.Size()
	if opts.Range != nil {
		if opts.Range.Lo < 0 || opts.Range.Hi < opts.Range.Lo || opts.Range.Hi > grid.Size() {
			return nil, fmt.Errorf("%w: range [%d, %d) outside grid of %d candidates",
				ErrNoModel, opts.Range.Lo, opts.Range.Hi, grid.Size())
		}
		rlo, rhi = opts.Range.Lo, opts.Range.Hi
	}
	if err := opts.Constraints.validate(classes); err != nil {
		return nil, err
	}
	res := &SearchResult{Size: rhi - rlo}
	// The all-unused configuration is a grid point but not a candidate.
	emptyIdx := emptyIndex(grid)
	if emptyIdx >= 0 && rlo <= emptyIdx && emptyIdx < rhi {
		res.Size--
	}
	if res.Size <= 0 {
		if opts.Range != nil {
			return res, nil // an empty shard of a larger grid is not an error
		}
		return nil, fmt.Errorf("%w: no scorable candidate among 0", ErrNoModel)
	}

	// A memory guard makes τ depend on the whole configuration, not just
	// the (class, M, P) tables — guarded evaluators take the per-candidate
	// path (which applies the guard) and never prune.
	var tables *gridTables
	if ev.guard == nil {
		tables = ev.tables(grid)
	}
	prune := !opts.NoPrune && tables != nil
	filter := opts.Filter
	var plan *conPlan
	if c := opts.Constraints; !c.zero() {
		if tables != nil {
			plan = c.compile(grid, tables, ev.n)
		} else {
			// No dense tables, no structural pruning: the constraints run as
			// their defining closure, composed with any user filter.
			filter = andFilter(c.FilterFunc(ev.n, classes), filter)
		}
	}

	span := rhi - rlo
	maxW := span
	if maxW > int64(1<<20) {
		maxW = 1 << 20
	}
	workers := parallel.Workers(opts.Workers, int(maxW))
	// Aim for enough chunks per worker that pruning imbalance load-balances,
	// without making chunk claiming the bottleneck.
	chunk := span / int64(workers*64)
	if chunk < 1024 {
		chunk = 1024
	}

	walkers := make([]*walker, workers)
	shared := parallel.NewSharedThreshold()
	if prune && plan == nil && filter == nil && rlo == 0 && rhi == grid.Size() {
		var seed seedScratch
		seedThreshold(tables, &seed, k, shared)
	}
	parallel.Chunks(span, chunk, workers, func(wi int, lo, hi int64) {
		lo += rlo
		hi += rlo
		w := walkers[wi]
		if w == nil {
			w = newWalker(ev, grid, tables, plan, filter, k, shared, emptyIdx, prune)
			walkers[wi] = w
		}
		if tables != nil {
			w.walk(lo, hi)
		} else {
			w.scanRange(lo, hi)
		}
	})

	lists := make([][]parallel.Candidate, 0, workers)
	for _, w := range walkers {
		if w != nil {
			lists = append(lists, w.topk.Sorted())
			res.Scored += w.scored
			res.Pruned += w.pruned
		}
	}
	merged := parallel.MergeTopK(k, lists)
	if len(merged) == 0 {
		if opts.Range != nil {
			return res, nil // a barren shard of a scorable grid is not an error
		}
		return nil, fmt.Errorf("%w: no scorable candidate among %d", ErrNoModel, res.Size)
	}
	res.Best = make([]Estimate, len(merged))
	res.BestIndex = make([]int64, len(merged))
	for i, c := range merged {
		use := make([]cluster.ClassUse, classes)
		grid.At(c.Index, use)
		res.Best[i] = Estimate{Config: cluster.Configuration{Use: use}, Tau: c.Score}
		res.BestIndex[i] = c.Index
	}
	return res, nil
}

// walker is one worker's reusable search kernel: the iterative odometer's
// per-depth accumulators, the stack of contribution rows chosen so far, the
// worker-private top-K selection, and the scratch configuration the
// filter/fallback paths decode into. A walker is built once per worker and
// reused across every chunk the worker claims, so the steady-state walk
// allocates nothing.
type walker struct {
	ev     *Evaluator
	grid   *cluster.Grid
	t      *gridTables
	cons   *conPlan
	filter func(cfg cluster.Configuration) bool
	topk   *parallel.TopK
	shared *parallel.SharedThreshold

	emptyIdx int64
	prune    bool

	// Per-depth odometer state (index d describes the subtree whose classes
	// < d are fixed): digits[d] is the pair index being tried at depth d,
	// ibase[d] the subtree's first grid index, prefP[d] the prefix process
	// count, prefM[d] the prefix maximum per-PE process count (the memory
	// law's Mi), bnd[d] the running max of the chosen pairs' τ lower
	// bounds, and nrows[d] how many contribution rows the used prefix pairs
	// pushed onto rows. Descending overwrites the next depth's entries, so
	// ascending needs no undo.
	digits []int
	ibase  []int64
	prefP  []int
	prefM  []int
	bnd    []float64
	nrows  []int
	// nlim[d] is the pair-index limit at depth d: np normally, firstNZ when
	// a node-entry colmin check wholesale-pruned the class's scorable pairs.
	nlim []int
	rows [][]float64
	fuse cluster.Configuration // decode scratch; Use is nil when unneeded

	scored, pruned int64
}

func newWalker(ev *Evaluator, grid *cluster.Grid, t *gridTables, cons *conPlan,
	filter func(cfg cluster.Configuration) bool, k int,
	shared *parallel.SharedThreshold, emptyIdx int64, prune bool) *walker {
	classes := grid.Classes()
	w := &walker{
		ev: ev, grid: grid, t: t, cons: cons, filter: filter,
		topk: parallel.NewTopK(k), shared: shared,
		emptyIdx: emptyIdx, prune: prune,
		digits: make([]int, classes+1),
		ibase:  make([]int64, classes+1),
		prefP:  make([]int, classes+1),
		prefM:  make([]int, classes+1),
		bnd:    make([]float64, classes+1),
		nrows:  make([]int, classes+1),
		nlim:   make([]int, classes+1),
		rows:   make([][]float64, classes),
	}
	if filter != nil || t == nil {
		w.fuse = cluster.Configuration{Use: make([]cluster.ClassUse, classes)}
	}
	return w
}

// walk streams the grid indices in [lo, hi) in ascending order: a flat
// odometer over the class digits whose per-depth accumulators (prefix-P,
// prefix max-M, running bound, pushed contribution rows) replace the
// recursive walker's per-leaf re-summation. Subtrees are skipped wholesale
// when disjoint from the range, structurally excluded by the constraints,
// or — with pruning on — bounded strictly worse than the shared top-K
// threshold. Every skip is exact: structural exclusions remove exactly the
// candidates the constraint closure rejects (corner bounds are justified by
// the weak monotonicity of IEEE division and multiplication, leaf checks
// evaluate the closure's own float expressions), and bound pruning uses
// strict compares against a threshold that is always an upper bound on the
// global k-th best, so it can never drop a tie. The surviving (τ, index)
// ranking — and therefore the merged result — is identical with pruning on
// or off, constrained structurally or through the equivalent filter
// closure, at any worker count.
//
//het:hotpath
//het:allocfree
func (w *walker) walk(lo, hi int64) {
	t := w.t
	cons := w.cons
	last := w.grid.Classes() - 1
	if last == 0 {
		w.leafRun(0, lo, hi, 0, 0, math.Inf(-1), 0)
		return
	}
	pen := last - 1 // tailRun covers the two innermost classes
	digits, ibase := w.digits, w.ibase
	prefP, prefM, bnd, nrows := w.prefP, w.prefM, w.bnd, w.nrows
	nlim := w.nlim
	d := 0
	digits[0] = 0
	ibase[0] = 0
	prefP[0] = 0
	prefM[0] = 0
	bnd[0] = math.Inf(-1)
	nrows[0] = 0
	nlim[0] = t.np[0]
	if w.prune && pen > 0 {
		// Node-entry aggregate bound: if even the best scorable pair of the
		// root class bounds every subtree out, only the zero pair's subtree
		// is walked and the rest is skipped in one span. (When the root is
		// the penultimate class, tailRun's own entry check covers it.)
		eff := t.colmin[0][t.sufMinP[1]]
		if v := t.sufLB[1]; v > eff {
			eff = v
		}
		if eff > w.shared.Load() {
			fnz := t.firstNZ[0]
			st := t.strides[0]
			w.skipSpan(int64(fnz)*st, int64(t.np[0])*st, lo, hi)
			nlim[0] = fnz
		}
	}
	for d >= 0 {
		if d == pen {
			w.tailRun(lo, hi)
			d--
			if d >= 0 {
				digits[d]++
			}
			continue
		}
		j := digits[d]
		if j >= nlim[d] {
			d--
			if d >= 0 {
				digits[d]++
			}
			continue
		}
		stride := t.strides[d]
		s := ibase[d] + int64(j)*stride
		e := s + stride
		if e <= lo || s >= hi {
			digits[d]++
			continue
		}
		pw := t.pw[d][j]
		pm := prefM[d]
		if pr := t.procs[d][j]; pr > pm {
			pm = pr
		}
		if cons != nil {
			if cons.pairOK != nil && !cons.pairOK[d][j] {
				w.skipSpan(s, e, lo, hi)
				digits[d]++
				continue
			}
			// Every leaf below adds at least the remaining classes' minimum
			// process weight, so prefix + pair + min-suffix over the cap
			// means every candidate inside violates it.
			if cons.maxP > 0 && prefP[d]+pw+t.sufMinP[d+1] > cons.maxP {
				w.skipSpan(s, e, lo, hi)
				digits[d]++
				continue
			}
			if cons.memCap > 0 && pm > 0 {
				// Corner bound: per-PE demand Mi·8N²/P is weakly decreasing
				// in P and increasing in Mi. At the subtree's maximum
				// possible P with only the prefix's Mi, the demand is a
				// lower bound on every leaf's — above the cap, all violate.
				pmax := prefP[d] + pw + t.sufMaxP[d+1]
				if cons.mat/float64(pmax)*float64(pm) > cons.memCap {
					w.skipSpan(s, e, lo, hi)
					digits[d]++
					continue
				}
			}
		}
		b := bnd[d]
		if wm := t.winmin[d][j]; wm != nil {
			// Dynamic pair bound: every leaf below runs at a total P inside
			// [prefix+pair+min-suffix, prefix+pair+max-suffix], so the row's
			// windowed minimum there floors the pair's contribution for this
			// whole subtree.
			if v := wm[prefP[d]+pw+t.sufMinP[d+1]]; v > b {
				b = v
			}
		}
		if w.prune {
			// The remaining classes contribute at least sufLB no matter
			// which pairs they choose, so the subtree's τ floor is the max
			// of the prefix bound and the suffix bound.
			eff := b
			if v := t.sufLB[d+1]; v > eff {
				eff = v
			}
			if eff > w.shared.Load() {
				w.skipSpan(s, e, lo, hi)
				digits[d]++
				continue
			}
		}
		nr := nrows[d]
		if row := t.contrib[d][j]; row != nil {
			w.rows[nr] = row
			nr++
		}
		if w.fuse.Use != nil {
			w.fuse.Use[d] = w.grid.Pairs(d)[j]
		}
		d++
		digits[d] = 0
		ibase[d] = s
		prefP[d] = prefP[d-1] + pw
		prefM[d] = pm
		bnd[d] = b
		nrows[d] = nr
		nlim[d] = t.np[d]
		if d != pen && w.prune {
			// Same node-entry aggregate bound for the child: one colmin
			// compare covers all of its scorable pairs (tailRun does its own
			// entry check for the penultimate class).
			eff := b
			if v := t.colmin[d][prefP[d]+t.sufMinP[d+1]]; v > eff {
				eff = v
			}
			if v := t.sufLB[d+1]; v > eff {
				eff = v
			}
			if eff > w.shared.Load() {
				fnz := t.firstNZ[d]
				st := t.strides[d]
				w.skipSpan(s+int64(fnz)*st, s+int64(t.np[d])*st, lo, hi)
				nlim[d] = fnz
			}
		}
	}
}

// tailRun walks the two innermost classes of the subtree fixed by the
// prefix digits (the odometer's hottest levels — for a C-class grid they
// hold all but a 1/(pairs²) fraction of the nodes) with every table row
// hoisted into locals: the penultimate class is a plain loop applying the
// same subtree checks as walk, the innermost a consecutive index run
// delegated to leafRun. Check order, operands and float expressions are
// identical to walk's, so the offer stream is unchanged.
//
//het:hotpath
//het:allocfree
func (w *walker) tailRun(lo, hi int64) {
	t := w.t
	cons := w.cons
	d := w.grid.Classes() - 2
	stride := t.strides[d]
	np := t.np[d]
	pwRow := t.pw[d]
	smRow := t.winmin[d]
	ctRow := t.contrib[d]
	procRow := t.procs[d]
	var okRow []bool
	if cons != nil && cons.pairOK != nil {
		okRow = cons.pairOK[d]
	}
	base := w.ibase[d]
	pp := w.prefP[d]
	pm0 := w.prefM[d]
	b0 := w.bnd[d]
	nr0 := w.nrows[d]
	sufMinP := t.sufMinP[d+1]
	sufMaxP := t.sufMaxP[d+1]
	sufLB := t.sufLB[d+1]
	prune := w.prune
	if prune {
		// Node-entry aggregate bound: one colmin compare covers all the
		// class's scorable pairs; when it fires, only the zero pairs'
		// subtrees remain to walk.
		eff := b0
		if v := t.colmin[d][pp+sufMinP]; v > eff {
			eff = v
		}
		if sufLB > eff {
			eff = sufLB
		}
		if eff > w.shared.Load() {
			fnz := t.firstNZ[d]
			w.skipSpan(base+int64(fnz)*stride, base+int64(np)*stride, lo, hi)
			np = fnz
		}
	}
	for j := 0; j < np; j++ {
		s := base + int64(j)*stride
		e := s + stride
		if e <= lo || s >= hi {
			continue
		}
		pw := pwRow[j]
		pm := pm0
		if pr := procRow[j]; pr > pm {
			pm = pr
		}
		if cons != nil {
			if okRow != nil && !okRow[j] {
				w.skipSpan(s, e, lo, hi)
				continue
			}
			if cons.maxP > 0 && pp+pw+sufMinP > cons.maxP {
				w.skipSpan(s, e, lo, hi)
				continue
			}
			if cons.memCap > 0 && pm > 0 {
				pmax := pp + pw + sufMaxP
				if cons.mat/float64(pmax)*float64(pm) > cons.memCap {
					w.skipSpan(s, e, lo, hi)
					continue
				}
			}
		}
		b := b0
		if sm := smRow[j]; sm != nil {
			// Same dynamic bound as walk: the row's windowed minimum at the
			// subtree's minimum reachable total P.
			if v := sm[pp+pw+sufMinP]; v > b {
				b = v
			}
		}
		if prune {
			eff := b
			if sufLB > eff {
				eff = sufLB
			}
			if eff > w.shared.Load() {
				w.skipSpan(s, e, lo, hi)
				continue
			}
		}
		nr := nr0
		if row := ctRow[j]; row != nil {
			w.rows[nr] = row
			nr++
		}
		if w.fuse.Use != nil {
			w.fuse.Use[d] = w.grid.Pairs(d)[j]
		}
		w.leafRun(s, lo, hi, pp+pw, pm, b, nr)
	}
}

// leafRun scores the innermost class of the subtree starting at base: its
// stride is 1, so the subtree is one consecutive index run and the whole
// pair list is a tight loop of contribution-row lookups against the prefix
// accumulators (prefix-P pp, prefix max-M pm, running bound b0, nr pushed
// rows) — no per-leaf re-summation, no closure calls, no allocation.
//
//het:hotpath
//het:allocfree
func (w *walker) leafRun(base, lo, hi int64, pp, pm int, b0 float64, nr int) {
	d := w.grid.Classes() - 1
	t := w.t
	j0, j1 := 0, t.np[d]
	if base < lo {
		j0 = int(lo - base)
	}
	if base+int64(j1) > hi {
		j1 = int(hi - base)
	}
	cons := w.cons
	pwRow := t.pw[d]
	ctRow := t.contrib[d]
	procRow := t.procs[d]
	var okRow []bool
	if cons != nil && cons.pairOK != nil {
		okRow = cons.pairOK[d]
	}
	rows := w.rows
	if w.prune && j0 < j1 {
		// Node-entry aggregate bound: at a leaf the reachable total P is
		// exact, so colmin is the minimum over the class's scorable pairs of
		// their exact contribution at their own P — one compare prunes the
		// whole scorable run (NaN entries count +Inf here: those candidates
		// never offer either way, only the Scored/Pruned split shifts).
		eff := b0
		if v := t.colmin[d][pp]; v > eff {
			eff = v
		}
		if eff > w.shared.Load() {
			fnz := t.firstNZ[d]
			if fnz < j0 {
				fnz = j0
			}
			if fnz < j1 {
				w.pruned += int64(j1 - fnz)
				j1 = fnz
			}
		}
	}
pairLoop:
	for j := j0; j < j1; j++ {
		idx := base + int64(j)
		if idx == w.emptyIdx {
			continue
		}
		if okRow != nil && !okRow[j] {
			w.pruned++
			continue
		}
		p := pp + pwRow[j]
		if cons != nil {
			if cons.maxP > 0 && p > cons.maxP {
				w.pruned++
				continue
			}
			if cons.memCap > 0 {
				mm := pm
				if pr := procRow[j]; pr > mm {
					mm = pr
				}
				// The closure's own expression on its own operands, so the
				// accept/reject decision is bit-identical to FilterFunc.
				if mm > 0 && cons.mat/float64(p)*float64(mm) > cons.memCap {
					w.pruned++
					continue
				}
			}
		}
		if w.prune {
			// At a leaf P is exact, so the pair's own contribution row at p
			// is the sharpest valid floor (NaN compares false and falls back
			// to the prefix bound; the candidate is then scored and skipped
			// by the NaN check below, exactly as without pruning).
			b := b0
			if row := ctRow[j]; row != nil {
				if v := row[p]; v > b {
					b = v
				}
			}
			if b > w.shared.Load() {
				w.pruned++
				continue
			}
		}
		w.scored++
		if w.filter != nil {
			w.fuse.Use[d] = w.grid.Pairs(d)[j]
			if !w.filter(w.fuse) {
				continue
			}
		}
		tau := math.Inf(-1)
		for r := 0; r < nr; r++ {
			v := rows[r][p]
			if math.IsNaN(v) {
				continue pairLoop // unscorable candidate, skipped like Optimize does
			}
			if v > tau {
				tau = v
			}
		}
		if row := ctRow[j]; row != nil {
			v := row[p]
			if math.IsNaN(v) {
				continue
			}
			if v > tau {
				tau = v
			}
		}
		if w.topk.Offer(idx, tau) {
			w.shared.Update(w.topk.Threshold())
		}
	}
}

// skipSpan accounts a wholesale-skipped subtree, clamped to the searched
// range, with the empty configuration excluded: it is a grid point but
// never a candidate.
func (w *walker) skipSpan(s, e, lo, hi int64) {
	if s < lo {
		s = lo
	}
	if e > hi {
		e = hi
	}
	w.pruned += e - s
	if s <= w.emptyIdx && w.emptyIdx < e {
		w.pruned--
	}
}

// scanRange is the per-candidate fallback for grids without dense tables
// (memory-guarded evaluators, or total P beyond maxGridTableP): decode each
// index, filter, score through the compiled formulas. No pruning bounds.
//
//het:hotpath
func (w *walker) scanRange(lo, hi int64) {
	use := w.fuse.Use
	for idx := lo; idx < hi; idx++ {
		if idx == w.emptyIdx {
			continue
		}
		w.grid.At(idx, use)
		w.scored++
		if w.filter != nil && !w.filter(w.fuse) {
			continue
		}
		if tau, ok := w.ev.Tau(w.fuse); ok {
			if w.topk.Offer(idx, tau) {
				w.shared.Update(w.topk.Threshold())
			}
		}
	}
}

// Reusable holds the buffers of a sequential search so repeated searches
// over one (evaluator, grid) pair allocate nothing after the first call:
// the walker scratch, the top-K selection, the shared bound and the result
// backing arrays are all recycled. The zero value is ready to use. Not safe
// for concurrent use, and the returned result — including its Best
// configurations — aliases the buffers, valid only until the next call.
type Reusable struct {
	w      *walker
	grid   *cluster.Grid
	ev     *Evaluator
	shared *parallel.SharedThreshold
	cons   *Constraints
	plan   *conPlan
	seed   seedScratch
	sorted []parallel.Candidate
	best   []Estimate
	bidx   []int64
	use    []cluster.ClassUse
	res    SearchResult
}

// SearchReuse is the sequential (Workers forced to 1) Search writing into
// r's reused buffers: same validation, same candidate set, bit-identical
// Best/BestIndex/Size/Scored/Pruned to Search with Workers: 1 and the same
// options. Steady-state calls with a stable grid, TopK and Constraints
// pointer allocate nothing (the benchrun SearchKernel1M gate pins this).
func (ev *Evaluator) SearchReuse(grid *cluster.Grid, opts SearchOptions, r *Reusable) (*SearchResult, error) {
	classes := grid.Classes()
	if classes != ev.classes {
		return nil, fmt.Errorf("%w: space has %d classes, model set has %d", ErrNoModel, classes, ev.classes)
	}
	k := opts.TopK
	if k <= 0 {
		k = 1
	}
	rlo, rhi := int64(0), grid.Size()
	if opts.Range != nil {
		if opts.Range.Lo < 0 || opts.Range.Hi < opts.Range.Lo || opts.Range.Hi > grid.Size() {
			return nil, fmt.Errorf("%w: range [%d, %d) outside grid of %d candidates",
				ErrNoModel, opts.Range.Lo, opts.Range.Hi, grid.Size())
		}
		rlo, rhi = opts.Range.Lo, opts.Range.Hi
	}
	if err := opts.Constraints.validate(classes); err != nil {
		return nil, err
	}
	size := rhi - rlo
	emptyIdx := emptyIndex(grid)
	if emptyIdx >= 0 && rlo <= emptyIdx && emptyIdx < rhi {
		size--
	}
	if size <= 0 {
		if opts.Range != nil {
			r.best, r.bidx = r.best[:0], r.bidx[:0]
			return r.result(size, 0, 0), nil
		}
		return nil, fmt.Errorf("%w: no scorable candidate among 0", ErrNoModel)
	}
	var tables *gridTables
	if ev.guard == nil {
		tables = ev.tables(grid)
	}
	prune := !opts.NoPrune && tables != nil
	filter := opts.Filter
	var plan *conPlan
	if c := opts.Constraints; !c.zero() {
		if tables != nil {
			// The plan's memory exclusions depend on the problem size, so the
			// cache key includes the evaluator alongside constraints and grid.
			if c == r.cons && grid == r.grid && ev == r.ev {
				plan = r.plan
			} else {
				plan = c.compile(grid, tables, ev.n)
			}
		} else {
			filter = andFilter(c.FilterFunc(ev.n, classes), filter)
		}
	}
	r.cons, r.plan = opts.Constraints, plan

	if r.shared == nil {
		r.shared = parallel.NewSharedThreshold()
	} else {
		r.shared.Reset()
	}
	w := r.w
	if w == nil || r.grid != grid || r.ev != ev || w.topk.K() != k {
		w = newWalker(ev, grid, tables, plan, filter, k, r.shared, emptyIdx, prune)
		r.w, r.grid, r.ev = w, grid, ev
	} else {
		w.t, w.cons, w.filter, w.emptyIdx, w.prune = tables, plan, filter, emptyIdx, prune
		if w.fuse.Use == nil && (filter != nil || tables == nil) {
			w.fuse = cluster.Configuration{Use: make([]cluster.ClassUse, classes)}
		}
		w.topk.Reset()
		w.scored, w.pruned = 0, 0
	}
	if prune && plan == nil && filter == nil && rlo == 0 && rhi == grid.Size() {
		seedThreshold(tables, &r.seed, k, r.shared)
	}
	if tables != nil {
		w.walk(rlo, rhi)
	} else {
		w.scanRange(rlo, rhi)
	}

	r.sorted = w.topk.SortInto(r.sorted[:0])
	if len(r.sorted) == 0 {
		if opts.Range != nil {
			r.best, r.bidx = r.best[:0], r.bidx[:0]
			return r.result(size, w.scored, w.pruned), nil
		}
		return nil, fmt.Errorf("%w: no scorable candidate among %d", ErrNoModel, size)
	}
	if need := len(r.sorted) * classes; cap(r.use) < need {
		r.use = make([]cluster.ClassUse, need)
	}
	r.best, r.bidx = r.best[:0], r.bidx[:0]
	for i, c := range r.sorted {
		use := r.use[i*classes : (i+1)*classes : (i+1)*classes]
		grid.At(c.Index, use)
		r.best = append(r.best, Estimate{Config: cluster.Configuration{Use: use}, Tau: c.Score})
		r.bidx = append(r.bidx, c.Index)
	}
	return r.result(size, w.scored, w.pruned), nil
}

// result assembles the reused SearchResult view over r's buffers.
func (r *Reusable) result(size, scored, pruned int64) *SearchResult {
	r.res = SearchResult{Best: r.best, BestIndex: r.bidx, Size: size, Scored: scored, Pruned: pruned}
	return &r.res
}
