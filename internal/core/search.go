package core

import (
	"fmt"
	"math"

	"hetmodel/internal/cluster"
	"hetmodel/internal/parallel"
)

// SearchOptions tunes the streaming configuration search.
type SearchOptions struct {
	// Workers bounds the concurrency (<= 0 selects GOMAXPROCS, 1 forces a
	// sequential scan). The winners are identical at any setting.
	Workers int
	// TopK selects how many best candidates to return (<= 0 means 1).
	TopK int
	// NoPrune disables the lower-bound subtree pruning. Pruning never
	// changes the returned candidates — it only skips subtrees whose bound
	// proves they rank strictly worse than results already in hand — so
	// this switch exists for benchmarking and for the equivalence tests.
	NoPrune bool
	// Range, when non-nil, restricts the search to the grid indices in
	// [Lo, Hi). Ranking, pruning and filtering are unchanged — candidates
	// keep their global grid indices — so the union of disjoint ranges
	// covering the grid scores exactly the candidates of a full search, and
	// merging per-range results with parallel.MergeTopK reproduces the full
	// search's top-K bit for bit (the fleet layer's shard/merge invariant).
	// Unlike a full search, a range holding no scorable candidate is not an
	// error: it returns an empty Best, because a shard of a scorable grid
	// can legitimately be barren.
	Range *IndexRange
	// Filter, when non-nil, restricts the search to candidates for which it
	// returns true (the serving layer compiles query constraints — PE-class
	// subsets, total-process caps, per-PE memory bounds — into one). The
	// filter must be a pure function of the configuration: it runs
	// concurrently from every worker and its verdict, like τ, must not
	// depend on scheduling. Filtering composes soundly with pruning because
	// both only remove candidates — a pruned subtree holds no candidate that
	// could outrank an already-offered (filter-passing) one. The
	// configuration passed in shares a per-worker buffer; the filter must
	// not retain it.
	Filter func(cfg cluster.Configuration) bool
}

// IndexRange is a half-open interval [Lo, Hi) of grid indices. The fleet
// layer partitions a grid into disjoint ranges, one per member planner.
type IndexRange struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

// SearchResult is the outcome of a streaming search.
type SearchResult struct {
	// Best holds the TopK best candidates, best first, ties broken toward
	// the earlier enumeration position. Err is nil on every entry.
	Best []Estimate
	// BestIndex holds the global grid index of each Best entry. The
	// (Tau, BestIndex) pairs are what a cross-process merge ranks on:
	// parallel.MergeTopK over per-shard pairs reproduces the unsharded
	// ranking exactly.
	BestIndex []int64
	// Size is the number of distinct candidates in the searched range (the
	// all-unused configuration excluded); disjoint ranges covering the grid
	// have Sizes summing to the full search's.
	Size int64
	// Scored counts candidates actually evaluated; Pruned counts
	// candidates skipped by the bound. Scored+Pruned == Size on an
	// unpruned search; with pruning and multiple workers the split between
	// the two depends on timing (the results never do).
	Scored, Pruned int64
}

// OptimizeSpace searches a configuration space at problem size n without
// materializing the candidate slice: the space is compiled to a grid, the
// model set to an evaluator, and grid indices are streamed through a
// sharded search with deterministic lowest-index tie-breaking. The winner
// is identical to Optimize over space.Enumerate(), at any worker count,
// with pruning on or off.
func (ms *ModelSet) OptimizeSpace(space cluster.Space, n int, opts SearchOptions) (*SearchResult, error) {
	grid, err := space.Compile()
	if err != nil {
		return nil, err
	}
	return ms.Compile(float64(n)).Search(grid, opts)
}

// maxGridTableP bounds the per-(class, pair, P) contribution tables: a
// space whose total process count exceeds this falls back to per-candidate
// evaluation (still streamed and sharded, but without pruning bounds).
const maxGridTableP = 1 << 16

// gridTables holds the per-grid dense precomputation: for every class,
// canonical pair and achievable total process count P, the class's
// contribution to τ — and per (class, pair) the minimum contribution over
// all P, a monotone lower bound on τ for any candidate using that pair
// (τ is the max of per-class contributions, and each contribution depends
// only on (class, M, P)).
type gridTables struct {
	// pw[ci][j] is the process count the pair contributes to P.
	pw [][]int
	// contrib[ci][j][P] is the class contribution; NaN marks "no model".
	// nil for unused pairs (they contribute nothing).
	contrib [][][]float64
	// lb[ci][j] is min over P of contrib (>= the pair's own process
	// count); -Inf for unused pairs, +Inf when no P is scorable.
	lb   [][]float64
	maxP int
}

func (ev *Evaluator) compileGrid(grid *cluster.Grid) *gridTables {
	classes := grid.Classes()
	t := &gridTables{
		pw:      make([][]int, classes),
		contrib: make([][][]float64, classes),
		lb:      make([][]float64, classes),
	}
	for ci := 0; ci < classes; ci++ {
		pairs := grid.Pairs(ci)
		t.pw[ci] = make([]int, len(pairs))
		maxPW := 0
		for j, u := range pairs {
			t.pw[ci][j] = u.PEs * u.Procs
			if t.pw[ci][j] > maxPW {
				maxPW = t.pw[ci][j]
			}
		}
		t.maxP += maxPW
	}
	if t.maxP > maxGridTableP {
		return nil
	}
	for ci := 0; ci < classes; ci++ {
		pairs := grid.Pairs(ci)
		t.contrib[ci] = make([][]float64, len(pairs))
		t.lb[ci] = make([]float64, len(pairs))
		for j, u := range pairs {
			if u.PEs == 0 {
				t.lb[ci][j] = math.Inf(-1)
				continue
			}
			row := make([]float64, t.maxP+1)
			lb := math.Inf(1)
			for p := 0; p <= t.maxP; p++ {
				row[p] = math.NaN()
				if p < t.pw[ci][j] {
					continue
				}
				if v, ok := ev.classTau(ci, u.Procs, p); ok {
					row[p] = v
					if v < lb {
						lb = v
					}
				}
			}
			t.contrib[ci][j] = row
			t.lb[ci][j] = lb
		}
	}
	return t
}

// Search streams every candidate of the grid through the evaluator and
// returns the TopK best. See OptimizeSpace for the determinism contract.
func (ev *Evaluator) Search(grid *cluster.Grid, opts SearchOptions) (*SearchResult, error) {
	classes := grid.Classes()
	if classes != ev.classes {
		return nil, fmt.Errorf("%w: space has %d classes, model set has %d", ErrNoModel, classes, ev.classes)
	}
	k := opts.TopK
	if k <= 0 {
		k = 1
	}
	rlo, rhi := int64(0), grid.Size()
	if opts.Range != nil {
		if opts.Range.Lo < 0 || opts.Range.Hi < opts.Range.Lo || opts.Range.Hi > grid.Size() {
			return nil, fmt.Errorf("%w: range [%d, %d) outside grid of %d candidates",
				ErrNoModel, opts.Range.Lo, opts.Range.Hi, grid.Size())
		}
		rlo, rhi = opts.Range.Lo, opts.Range.Hi
	}
	res := &SearchResult{Size: rhi - rlo}
	// The all-unused configuration is a grid point but not a candidate.
	emptyIdx := int64(-1)
	if grid.Size() > 0 {
		all := true
		for ci := 0; ci < classes; ci++ {
			pairs := grid.Pairs(ci)
			if len(pairs) == 0 || pairs[0].PEs != 0 {
				all = false
				break
			}
		}
		if all {
			emptyIdx = 0 // the zero pair sorts first in every class
			if rlo <= emptyIdx && emptyIdx < rhi {
				res.Size--
			}
		}
	}
	if res.Size <= 0 {
		if opts.Range != nil {
			return res, nil // an empty shard of a larger grid is not an error
		}
		return nil, fmt.Errorf("%w: no scorable candidate among 0", ErrNoModel)
	}

	// A memory guard makes τ depend on the whole configuration, not just
	// the (class, M, P) tables — guarded evaluators take the per-candidate
	// path (which applies the guard) and never prune.
	var tables *gridTables
	if ev.guard == nil {
		tables = ev.compileGrid(grid)
	}
	prune := !opts.NoPrune && tables != nil

	span := rhi - rlo
	maxW := span
	if maxW > int64(1<<20) {
		maxW = 1 << 20
	}
	workers := parallel.Workers(opts.Workers, int(maxW))
	// Aim for enough chunks per worker that pruning imbalance load-balances,
	// without making chunk claiming the bottleneck.
	chunk := span / int64(workers*64)
	if chunk < 1024 {
		chunk = 1024
	}

	shards := make([]*parallel.TopK, workers)
	scored := make([]int64, workers)
	pruned := make([]int64, workers)
	shared := parallel.NewSharedMin()
	parallel.Chunks(span, chunk, workers, func(w int, lo, hi int64) {
		lo += rlo
		hi += rlo
		if shards[w] == nil {
			shards[w] = parallel.NewTopK(k)
		}
		sh := shards[w]
		bound := func() float64 {
			if k == 1 {
				return shared.Load()
			}
			return sh.Threshold()
		}
		offer := func(idx int64, tau float64) {
			sh.Offer(idx, tau)
			if k == 1 {
				shared.Update(tau)
			}
		}
		if tables != nil {
			scoredW, prunedW := ev.searchRange(grid, tables, lo, hi, emptyIdx, prune, opts.Filter, bound, offer)
			scored[w] += scoredW
			pruned[w] += prunedW
			return
		}
		// Fallback for spaces too large for the dense tables: evaluate each
		// candidate through the compiled formulas, no pruning bounds.
		use := make([]cluster.ClassUse, classes)
		cfg := cluster.Configuration{Use: use}
		for idx := lo; idx < hi; idx++ {
			if idx == emptyIdx {
				continue
			}
			grid.At(idx, use)
			scored[w]++
			if opts.Filter != nil && !opts.Filter(cfg) {
				continue
			}
			if tau, ok := ev.Tau(cfg); ok {
				offer(idx, tau)
			}
		}
	})

	lists := make([][]parallel.Candidate, 0, workers)
	for _, sh := range shards {
		if sh != nil {
			lists = append(lists, sh.Sorted())
		}
	}
	for w := range scored {
		res.Scored += scored[w]
		res.Pruned += pruned[w]
	}
	merged := parallel.MergeTopK(k, lists)
	if len(merged) == 0 {
		if opts.Range != nil {
			return res, nil // a barren shard of a scorable grid is not an error
		}
		return nil, fmt.Errorf("%w: no scorable candidate among %d", ErrNoModel, res.Size)
	}
	res.Best = make([]Estimate, len(merged))
	res.BestIndex = make([]int64, len(merged))
	for i, c := range merged {
		use := make([]cluster.ClassUse, classes)
		grid.At(c.Index, use)
		res.Best[i] = Estimate{Config: cluster.Configuration{Use: use}, Tau: c.Score}
		res.BestIndex[i] = c.Index
	}
	return res, nil
}

// searchRange walks the grid indices in [lo, hi) in ascending order through
// the dense tables, pruning subtrees whose lower bound proves every
// candidate inside ranks strictly worse than the current bound. Pruning
// with a strict comparison can never drop a candidate that would tie the
// incumbent, so the surviving (tau, index) ranking — and therefore the
// merged result — is identical with pruning on or off. A non-nil filter
// excludes candidates before scoring; filtered candidates still count as
// scored (they were visited, not proven redundant by a bound).
//
//het:hotpath
func (ev *Evaluator) searchRange(grid *cluster.Grid, t *gridTables, lo, hi, emptyIdx int64,
	prune bool, filter func(cfg cluster.Configuration) bool,
	bound func() float64, offer func(idx int64, tau float64)) (scored, pruned int64) {
	classes := grid.Classes()
	digits := make([]int, classes)
	var fcfg cluster.Configuration
	if filter != nil {
		fcfg = cluster.Configuration{Use: make([]cluster.ClassUse, classes)}
	}
	var walk func(depth int, base int64, curMax float64)
	walk = func(depth int, base int64, curMax float64) { //het:allow hotpath -- one closure per range, amortized over >=1024 candidates; recursion needs the self-reference

		if depth == classes {
			if base == emptyIdx {
				return
			}
			if filter != nil {
				for ci, j := range digits {
					fcfg.Use[ci] = grid.Pairs(ci)[j]
				}
				if !filter(fcfg) {
					scored++
					return
				}
			}
			// Leaf: P and τ from the digit contributions.
			p := 0
			for ci, j := range digits {
				p += t.pw[ci][j]
			}
			tau := math.Inf(-1)
			for ci, j := range digits {
				row := t.contrib[ci][j]
				if row == nil {
					continue // unused class
				}
				v := row[p]
				if math.IsNaN(v) {
					scored++
					return // unscorable candidate, skipped like Optimize does
				}
				if v > tau {
					tau = v
				}
			}
			scored++
			offer(base, tau)
			return
		}
		stride := grid.Stride(depth)
		pairs := grid.Pairs(depth)
		for j := range pairs {
			s := base + int64(j)*stride
			e := s + stride
			if e <= lo || s >= hi {
				continue
			}
			b := curMax
			if v := t.lb[depth][j]; v > b {
				b = v
			}
			if prune && b > bound() {
				olo, ohi := s, e
				if olo < lo {
					olo = lo
				}
				if ohi > hi {
					ohi = hi
				}
				pruned += ohi - olo
				if olo <= emptyIdx && emptyIdx < ohi {
					pruned-- // the empty configuration is not a candidate
				}
				continue
			}
			digits[depth] = j
			walk(depth+1, s, b)
		}
	}
	walk(0, 0, math.Inf(-1))
	return scored, pruned
}
