package core

import (
	"errors"
	"math"
	"testing"
)

// synthPTWorld generates samples obeying the P-T law exactly:
// Ta = work(N)/P + a0, Tc = c9·P·q(N) + c10·q(N)/P + c11, so FitPT can be
// validated for prediction accuracy.
func synthPTWorld(class, m int, ps []int, ns []int) []Sample {
	work := func(n float64) float64 { return 6e-10 * n * n * n }
	q := func(n float64) float64 { return 3e-8 * n * n }
	var out []Sample
	for _, p := range ps {
		for _, n := range ns {
			nf := float64(n)
			ta := work(nf)/float64(p) + 0.2
			tc := 0.05*float64(p)*q(nf) + 0.4*q(nf)/float64(p)
			out = append(out, synthSample(class, p, m, n, ta, tc))
		}
	}
	return out
}

func TestFitPTPredicts(t *testing.T) {
	ps := []int{1, 2, 4, 8}
	samples := synthPTWorld(1, 1, ps, paperNs)
	nts, err := FitAllNT(samples)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := FitPT(nts, samples, PTKey{Class: 1, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Ps) != 4 {
		t.Fatalf("Ps = %v", pt.Ps)
	}
	// In-range and P-extrapolated predictions must track the law.
	work := func(n float64) float64 { return 6e-10 * n * n * n }
	q := func(n float64) float64 { return 3e-8 * n * n }
	for _, tc := range []struct {
		n float64
		p int
	}{{3200, 4}, {6400, 8}, {4800, 6}, {6400, 12}} {
		wantTa := work(tc.n)/float64(tc.p) + 0.2
		wantTc := 0.05*float64(tc.p)*q(tc.n) + 0.4*q(tc.n)/float64(tc.p)
		if rel := math.Abs(pt.Ta(tc.n, tc.p)-wantTa) / wantTa; rel > 0.02 {
			t.Fatalf("Ta(%v,%d) rel err %v", tc.n, tc.p, rel)
		}
		if rel := math.Abs(pt.Tc(tc.n, tc.p)-wantTc) / wantTc; rel > 0.05 {
			t.Fatalf("Tc(%v,%d) rel err %v", tc.n, tc.p, rel)
		}
	}
	if est := pt.Estimate(3200, 4); math.Abs(est-(pt.Ta(3200, 4)+pt.Tc(3200, 4))) > 1e-12 {
		t.Fatal("Estimate != Ta + Tc")
	}
}

func TestFitPTRequiresThreeP(t *testing.T) {
	samples := synthPTWorld(1, 1, []int{1, 2}, paperNs)
	nts, err := FitAllNT(samples)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FitPT(nts, samples, PTKey{Class: 1, M: 1}); !errors.Is(err, ErrBadSamples) {
		t.Fatal("two process counts accepted")
	}
}

func TestFitPTSinglePEOnlyBin(t *testing.T) {
	// A bin measured only at P == M (one PE) cannot yield a P-T model.
	samples := synthPTWorld(0, 4, []int{4}, paperNs)
	nts, err := FitAllNT(samples)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FitPT(nts, samples, PTKey{Class: 0, M: 4}); !errors.Is(err, ErrBadSamples) {
		t.Fatal("bin without multi-PE runs accepted")
	}
}

func TestComposeScalesPredictions(t *testing.T) {
	ps := []int{1, 2, 4, 8}
	samples := synthPTWorld(1, 2, ps, paperNs)
	nts, _ := FitAllNT(samples)
	pt, err := FitPT(nts, samples, PTKey{Class: 1, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	composed := pt.Compose(0, 0.27, 0.85)
	if composed.Key != (PTKey{Class: 0, M: 2}) {
		t.Fatalf("composed key = %v", composed.Key)
	}
	if math.Abs(composed.Ta(3200, 8)-0.27*pt.Ta(3200, 8)) > 1e-12 {
		t.Fatal("Ta not scaled")
	}
	if math.Abs(composed.Tc(3200, 8)-0.85*pt.Tc(3200, 8)) > 1e-12 {
		t.Fatal("Tc not scaled")
	}
	// Composition chains multiply.
	twice := composed.Compose(2, 2, 2)
	if math.Abs(twice.Ta(3200, 8)-0.54*pt.Ta(3200, 8)) > 1e-9 {
		t.Fatal("composition does not chain")
	}
	// Composing must not alias the source's coefficient slices.
	composed.KaCoeff[0] = 999
	if pt.KaCoeff[0] == 999 {
		t.Fatal("Compose aliases source")
	}
}

func TestFitAllPT(t *testing.T) {
	samples := append(
		synthPTWorld(1, 1, []int{1, 2, 4, 8}, paperNs),
		synthPTWorld(1, 2, []int{2, 4, 8, 16}, paperNs)...,
	)
	// A bin with too few P (skipped silently).
	samples = append(samples, synthPTWorld(0, 1, []int{1}, paperNs)...)
	nts, err := FitAllNT(samples)
	if err != nil {
		t.Fatal(err)
	}
	pts := FitAllPT(nts, samples)
	if len(pts) != 2 {
		t.Fatalf("PT models = %d, want 2", len(pts))
	}
	if _, ok := pts[PTKey{Class: 1, M: 2}]; !ok {
		t.Fatal("missing M=2 model")
	}
	if _, ok := pts[PTKey{Class: 0, M: 1}]; ok {
		t.Fatal("undersized bin fitted")
	}
}
