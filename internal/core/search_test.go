package core

import (
	"errors"
	"math"
	"sort"
	"testing"

	"hetmodel/internal/cluster"
)

// groundTruthTopK ranks a space's enumerated candidates by (tau, position)
// through the uncompiled estimator — the reference the streaming search
// must reproduce exactly.
func groundTruthTopK(t *testing.T, ms *ModelSet, space cluster.Space, n float64, k int) []Estimate {
	t.Helper()
	cfgs, err := space.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	type ranked struct {
		est Estimate
		idx int
	}
	var scored []ranked
	for i, cfg := range cfgs {
		tau, err := ms.Estimate(cfg, n)
		if err != nil || math.IsInf(tau, 1) || math.IsNaN(tau) {
			continue
		}
		scored = append(scored, ranked{Estimate{Config: cfg, Tau: tau}, i})
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].est.Tau != scored[j].est.Tau {
			return scored[i].est.Tau < scored[j].est.Tau
		}
		return scored[i].idx < scored[j].idx
	})
	if len(scored) > k {
		scored = scored[:k]
	}
	out := make([]Estimate, len(scored))
	for i, r := range scored {
		out[i] = r.est
	}
	return out
}

// TestOptimizeSpaceMatchesExhaustive is the tentpole equivalence property:
// the streaming search returns the identical ranked winners as the
// enumerate-then-sort reference — over the paper space and randomized
// spaces, at any worker count, top-K 1 and 3, pruning on and off.
func TestOptimizeSpaceMatchesExhaustive(t *testing.T) {
	ms := richWorld(t, nil)
	for si, space := range evalSpaces() {
		for _, n := range []int{400, 6400} {
			for _, k := range []int{1, 3} {
				want := groundTruthTopK(t, ms, space, float64(n), k)
				for _, workers := range []int{1, 2, 7, 0} {
					for _, noprune := range []bool{false, true} {
						res, err := ms.OptimizeSpace(space, n, SearchOptions{Workers: workers, TopK: k, NoPrune: noprune})
						if len(want) == 0 {
							if err == nil {
								t.Fatalf("space %d n=%d: search found %v, reference found nothing", si, n, res.Best)
							}
							continue
						}
						if err != nil {
							t.Fatalf("space %d n=%d k=%d w=%d noprune=%v: %v", si, n, k, workers, noprune, err)
						}
						if len(res.Best) != len(want) {
							t.Fatalf("space %d n=%d k=%d w=%d noprune=%v: %d results, want %d",
								si, n, k, workers, noprune, len(res.Best), len(want))
						}
						for i := range want {
							if res.Best[i].Tau != want[i].Tau || res.Best[i].Config.Key() != want[i].Config.Key() {
								t.Fatalf("space %d n=%d k=%d w=%d noprune=%v rank %d: got %s (%v), want %s (%v)",
									si, n, k, workers, noprune, i,
									res.Best[i].Config, res.Best[i].Tau, want[i].Config, want[i].Tau)
							}
						}
					}
				}
			}
		}
	}
}

// TestSearchAccounting checks Size/Scored/Pruned bookkeeping: an unpruned
// search visits everything, a pruned one visits no more, and both agree on
// the space size.
func TestSearchAccounting(t *testing.T) {
	ms := richWorld(t, nil)
	space := cluster.PaperEvaluationSpace()
	cfgs, err := space.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	full, err := ms.OptimizeSpace(space, 6400, SearchOptions{Workers: 1, NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Size != int64(len(cfgs)) {
		t.Fatalf("Size = %d, enumerate found %d", full.Size, len(cfgs))
	}
	if full.Scored != full.Size || full.Pruned != 0 {
		t.Fatalf("unpruned search scored %d / pruned %d of %d", full.Scored, full.Pruned, full.Size)
	}
	pruned, err := ms.OptimizeSpace(space, 6400, SearchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Scored+pruned.Pruned != pruned.Size {
		t.Fatalf("pruned search accounts %d+%d of %d", pruned.Scored, pruned.Pruned, pruned.Size)
	}
	if pruned.Scored > full.Scored {
		t.Fatalf("pruning increased work: %d > %d", pruned.Scored, full.Scored)
	}
}

// TestOptimizeSpaceAgreesWithOptimize ties the new entry point to the old
// one over the paper grid.
func TestOptimizeSpaceAgreesWithOptimize(t *testing.T) {
	ms := richWorld(t, nil)
	space := cluster.PaperEvaluationSpace()
	cfgs, err := space.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{3200, 6400, 9600} {
		oldBest, oldTau, err := ms.Optimize(cfgs, n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ms.OptimizeSpace(space, n, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best[0].Tau != oldTau || res.Best[0].Config.Key() != oldBest.Key() {
			t.Fatalf("n=%d: OptimizeSpace %s (%v), Optimize %s (%v)",
				n, res.Best[0].Config, res.Best[0].Tau, oldBest, oldTau)
		}
	}
}

// TestOptimizeSpaceNoScorable returns ErrNoModel like Optimize does.
func TestOptimizeSpaceNoScorable(t *testing.T) {
	ms := builtWorld(t)
	// M = 6 was never measured, so nothing in this space is scorable.
	space := cluster.Space{
		PEChoices:   [][]int{{0}, {1, 2}},
		ProcChoices: [][]int{{1}, {6}},
	}
	if _, err := ms.OptimizeSpace(space, 3200, SearchOptions{}); !errors.Is(err, ErrNoModel) {
		t.Fatalf("expected ErrNoModel, got %v", err)
	}
	// A space holding only the all-unused configuration.
	empty := cluster.Space{PEChoices: [][]int{{0}, {0}}, ProcChoices: [][]int{{1}, {1}}}
	if _, err := ms.OptimizeSpace(empty, 3200, SearchOptions{}); !errors.Is(err, ErrNoModel) {
		t.Fatalf("expected ErrNoModel for empty space, got %v", err)
	}
}

// TestOptimizeSpaceGuardedFallsBackUnpruned: a memory guard makes τ depend
// on more than the (class, M, P) tables, so the pruned path must be
// disabled — and results must still match the reference.
func TestOptimizeSpaceGuardedMatchesReference(t *testing.T) {
	guard := func(cfg cluster.Configuration, n float64) float64 {
		if cfg.TotalProcs() > 8 {
			return 2 // penalize rather than exclude, to stress ordering
		}
		return 1
	}
	ms := richWorld(t, guard)
	space := cluster.PaperEvaluationSpace()
	want := groundTruthTopK(t, ms, space, 6400, 2)
	res, err := ms.OptimizeSpace(space, 6400, SearchOptions{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Best[i].Tau != want[i].Tau || res.Best[i].Config.Key() != want[i].Config.Key() {
			t.Fatalf("rank %d: got %s (%v), want %s (%v)",
				i, res.Best[i].Config, res.Best[i].Tau, want[i].Config, want[i].Tau)
		}
	}
}

// TestOptimizeHeuristicAgreesWithExhaustive is the regression gate for the
// heuristic after the neighbours dedupe and the compiled scoring path: on
// the paper evaluation grid it must find the exhaustive optimum.
func TestOptimizeHeuristicAgreesWithExhaustive(t *testing.T) {
	ms := richWorld(t, nil)
	space := cluster.PaperEvaluationSpace()
	cfgs, err := space.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{3200, 6400, 9600} {
		exBest, exTau, err := ms.Optimize(cfgs, n)
		if err != nil {
			t.Fatal(err)
		}
		heurBest, heurTau, evals, err := ms.OptimizeHeuristic(space, n)
		if err != nil {
			t.Fatal(err)
		}
		if heurBest.Key() != exBest.Key() || heurTau != exTau {
			t.Fatalf("n=%d: heuristic %s (%v), exhaustive %s (%v)", n, heurBest, heurTau, exBest, exTau)
		}
		if evals <= 0 || evals >= len(cfgs) {
			t.Fatalf("n=%d: heuristic spent %d evals vs %d exhaustive", n, evals, len(cfgs))
		}
	}
}

// TestNeighboursNoDuplicateZero pins the dedupe fix: when 0 is already the
// adjacent choice, the jump-to-zero rule must not add it again.
func TestNeighboursNoDuplicateZero(t *testing.T) {
	got := neighbours([]int{0, 1, 2, 4, 8}, 1)
	seen := map[int]int{}
	for _, v := range got {
		seen[v]++
		if seen[v] > 1 {
			t.Fatalf("neighbours(1) returned %d twice: %v", v, got)
		}
	}
	if seen[0] != 1 || seen[2] != 1 || len(got) != 2 {
		t.Fatalf("neighbours(1) = %v, want {0, 2}", got)
	}
}
