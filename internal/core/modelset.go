package core

import (
	"fmt"
	"math"
	"sort"

	"hetmodel/internal/cluster"
	"hetmodel/internal/stats"
)

// ModelSet bundles all fitted models for a cluster plus the binning,
// composition and adjustment machinery, and is the estimator the optimizer
// consults.
type ModelSet struct {
	// Classes is the number of PE classes of the cluster.
	Classes int
	// NT holds the N-T models per measured configuration bin.
	NT map[Key]*NTModel
	// PT holds the P-T models per (class, M) bin, fitted or composed.
	PT map[PTKey]*PTModel
	// Adjust holds the paper's §4.1 linear correction of the
	// communication models, one transform per PE class: the P-T Tc
	// estimate of a class running AdjustMinM or more processes per PE is
	// passed through its class's transform. The paper fits a single
	// transform on the N = 6400, P2 = 8 measurements and applies it for
	// M1 ≥ 3 because that is where their deviations concentrate; our
	// simulated testbed's deviations are per class (P-extrapolation for
	// the directly-fitted class, composition error for the composed one),
	// so the correction is fit per class. AdjustMinM = 3 recovers the
	// paper's restriction.
	Adjust map[int]*stats.LinearTransform
	// AdjustMinM is the per-PE process-count threshold above which the
	// correction applies (1 = all multi-PE estimates; paper uses 3).
	AdjustMinM int
	// Memory, when non-nil, implements the paper's §3.4 memory binning in
	// its simplest form: since the memory requirement of each node "can be
	// predetermined from N and P", configurations predicted not to fit
	// are excluded (the guard returns +Inf) because no training data
	// exists in the paging regime. Not serialized; reattach after
	// loading a model file (see cluster.MemoryGuard).
	Memory MemoryGuard `json:"-"`
	// Bins, when non-nil, holds the training and calibration samples the
	// models were fitted from, partitioned into (class, M) bins. It is
	// persisted alongside the models and is what enables incremental
	// refit (Refit) and the exact rebuild reference (RebuildFromBins).
	Bins *BinStore
	// Compositions records the §3.5 composition steps applied to this
	// model set, in application order, so a refit can replay them after
	// the underlying fits change.
	Compositions []Composition
}

// Composition is one recorded §3.5 composition step: fill the target class's
// missing P-T bins by scaling the source class's models. FitTa marks the Ta
// factor as fitted (FitCompositionScale) rather than hand-chosen, so replay
// after a refit re-derives it from the refitted single-PE models; TaScale
// then records the factor's current value.
type Composition struct {
	Target  int     `json:"target"`
	Source  int     `json:"source"`
	TaScale float64 `json:"taScale"`
	TcScale float64 `json:"tcScale"`
	FitTa   bool    `json:"fitTa,omitempty"`
}

// MemoryGuard predicts the execution-time multiplier of memory pressure for
// a configuration at problem size n: 1 when everything fits, +Inf to
// exclude a configuration whose nodes would page.
type MemoryGuard func(cfg cluster.Configuration, n float64) float64

// Build assembles a ModelSet from training samples: all N-T models, all
// directly fittable P-T models.
func Build(classes int, samples []Sample) (*ModelSet, error) {
	if classes <= 0 {
		return nil, fmt.Errorf("%w: %d classes", ErrBadSamples, classes)
	}
	nts, err := FitAllNT(samples)
	if err != nil {
		return nil, err
	}
	return &ModelSet{
		Classes:    classes,
		NT:         nts,
		PT:         FitAllPT(nts, samples),
		AdjustMinM: 1,
	}, nil
}

// ComposeClass fills in the P-T models of a class that lacks them by scaling
// another class's P-T models (§3.5). taScale/tcScale multiply the source
// predictions; the paper uses hand-chosen constants (0.27 and 0.85 for
// Athlon from Pentium-II). The step is recorded in Compositions so an
// incremental refit can replay it against the refitted models.
func (ms *ModelSet) ComposeClass(target, source int, taScale, tcScale float64) error {
	c := Composition{Target: target, Source: source, TaScale: taScale, TcScale: tcScale}
	if err := ms.composeApply(c, true); err != nil {
		return err
	}
	ms.Compositions = append(ms.Compositions, c)
	return nil
}

// ComposeClassFitted is ComposeClass with the Ta factor fitted from the two
// classes' single-PE models (FitCompositionScale) instead of hand-chosen,
// recorded as such so refit replay re-derives it. It returns the fitted
// factor.
func (ms *ModelSet) ComposeClassFitted(target, source int, tcScale float64) (float64, error) {
	scale, err := ms.FitCompositionScale(target, source)
	if err != nil {
		return 0, err
	}
	c := Composition{Target: target, Source: source, TaScale: scale, TcScale: tcScale, FitTa: true}
	if err := ms.composeApply(c, true); err != nil {
		return 0, err
	}
	ms.Compositions = append(ms.Compositions, c)
	return scale, nil
}

// composeApply performs one composition step without recording it. Source
// bins are visited in sorted order so newly-inserted target keys can never
// perturb the walk. strict errors when nothing was composed — right for a
// user-invoked step, wrong for replay (a refit may have directly fitted
// every target bin, leaving the recipe with nothing to do).
func (ms *ModelSet) composeApply(c Composition, strict bool) error {
	if c.TaScale <= 0 || c.TcScale <= 0 {
		return fmt.Errorf("%w: nonpositive composition scale", ErrBadSamples)
	}
	composed := 0
	for _, key := range ms.PTKeys() {
		if key.Class != c.Source {
			continue
		}
		tk := PTKey{Class: c.Target, M: key.M}
		if _, exists := ms.PT[tk]; exists {
			continue
		}
		ms.PT[tk] = ms.PT[key].Compose(c.Target, c.TaScale, c.TcScale)
		composed++
	}
	if strict && composed == 0 {
		return fmt.Errorf("%w: class %d has no P-T models to compose from", ErrNoModel, c.Source)
	}
	return nil
}

// replayCompositions re-derives every composed P-T model from the recorded
// recipes, in recorded order, against the current fits: composed models are
// dropped, fitted Ta factors re-estimated (their single-PE inputs may have
// been refitted), and each recipe re-applied. A bin the refit could now fit
// directly keeps its fitted model — exactly what a from-scratch rebuild
// produces, which is what keeps Refit bit-identical to RebuildFromBins.
func (ms *ModelSet) replayCompositions() error {
	if len(ms.Compositions) == 0 {
		return nil
	}
	for _, key := range ms.PTKeys() {
		if ms.PT[key].Composed {
			delete(ms.PT, key)
		}
	}
	replayed := make([]Composition, 0, len(ms.Compositions))
	for _, c := range ms.Compositions {
		if c.FitTa {
			scale, err := ms.FitCompositionScale(c.Target, c.Source)
			if err != nil {
				return err
			}
			c.TaScale = scale
		}
		if err := ms.composeApply(c, false); err != nil {
			return err
		}
		replayed = append(replayed, c)
	}
	ms.Compositions = replayed
	return nil
}

// FitCompositionScale estimates the Ta composition factor between two
// classes from their single-PE N-T models: the work-weighted ratio
// Σ Ta_target / Σ Ta_source over the sizes both were fit on. Weighting by
// magnitude keeps the large-N speed ratio (what composition must preserve)
// from being polluted by the constant overheads and measurement noise that
// dominate small runs. It returns an error when either class lacks
// single-PE models.
//
// The communication factor cannot be derived from single-PE runs (they have
// no inter-PE communication), which is why the paper hand-picks it; callers
// typically pass the returned Ta scale together with a constant Tc scale to
// ComposeClass.
func (ms *ModelSet) FitCompositionScale(target, source int) (float64, error) {
	var num, den float64
	matched := false
	// Iterate bins in sorted order: the sums below are floating-point, so
	// map-order iteration would make the fitted scale vary run to run.
	for _, key := range ms.Keys() {
		if key.Class != target || key.P != key.M {
			continue
		}
		tm := ms.NT[key]
		sk := Key{Class: source, P: key.P, M: key.M}
		sm, ok := ms.NT[sk]
		if !ok {
			continue
		}
		matched = true
		for _, n := range tm.Ns {
			s := sm.Ta(n)
			if s <= 0 {
				continue
			}
			num += tm.Ta(n)
			den += s
		}
	}
	if !matched || den <= 0 {
		return 0, fmt.Errorf("%w: no overlapping single-PE bins between classes %d and %d", ErrNoModel, target, source)
	}
	return num / den, nil
}

// maxM returns the largest per-PE process count of a configuration.
func maxM(cfg cluster.Configuration) int {
	m := 0
	for _, u := range cfg.Use {
		if u.PEs > 0 && u.Procs > m {
			m = u.Procs
		}
	}
	return m
}

// EstimateClass returns the estimated Ti = Tai + Tci of one class in the
// configuration, applying the paper's binning: single-PE executions
// (P == Mi) use the N-T model, multi-PE executions the P-T model.
func (ms *ModelSet) EstimateClass(cfg cluster.Configuration, class int, n float64) (float64, error) {
	return ms.estimateClassNorm(cfg.Normalize(), class, n)
}

// estimateClassNorm is EstimateClass for a configuration the caller has
// already normalized. Estimate normalizes once and fans out through this —
// the public path used to re-normalize per class, allocating O(classes²)
// slices per candidate.
func (ms *ModelSet) estimateClassNorm(cfg cluster.Configuration, class int, n float64) (float64, error) {
	use := cfg.Use[class]
	if use.PEs == 0 {
		return 0, fmt.Errorf("%w: class %d unused in %s", ErrNoModel, class, cfg)
	}
	p := cfg.TotalProcs()
	if p == use.Procs {
		// Single-PE bin: the whole job runs on one processor.
		key := Key{Class: class, P: p, M: use.Procs}
		nt, ok := ms.NT[key]
		if !ok {
			return 0, fmt.Errorf("%w: no N-T model for %v", ErrNoModel, key)
		}
		return nt.Estimate(n), nil
	}
	key := PTKey{Class: class, M: use.Procs}
	pt, ok := ms.PT[key]
	if !ok {
		return 0, fmt.Errorf("%w: no P-T model for %v", ErrNoModel, key)
	}
	ta := pt.Ta(n, p)
	tc := pt.Tc(n, p)
	// The correction targets the model's extrapolation region (composed
	// classes, P beyond the fitted range): inside the evidence the raw
	// models "match the measurements very well" (paper §4.1).
	if lt := ms.Adjust[class]; lt != nil && use.Procs >= ms.AdjustMinM && pt.Extrapolating(p) {
		tc = lt.Apply(tc)
		if tc < 0 {
			tc = 0
		}
	}
	return ta + tc, nil
}

// Estimate returns the estimated total execution time of the configuration
// at problem size n: the maximum of the per-class estimates (each class's
// critical PE must finish), with the §4.1 adjustment applied when
// configured.
func (ms *ModelSet) Estimate(cfg cluster.Configuration, n float64) (float64, error) {
	cfg = cfg.Normalize()
	if len(cfg.Use) != ms.Classes {
		return 0, fmt.Errorf("%w: %d classes in config, model set has %d", ErrNoModel, len(cfg.Use), ms.Classes)
	}
	total := math.Inf(-1)
	used := false
	for ci, u := range cfg.Use {
		if u.PEs == 0 {
			continue
		}
		used = true
		ti, err := ms.estimateClassNorm(cfg, ci, n)
		if err != nil {
			return 0, err
		}
		if ti > total {
			total = ti
		}
	}
	if !used {
		return 0, fmt.Errorf("%w: empty configuration", ErrNoModel)
	}
	if ms.Memory != nil {
		total *= ms.Memory(cfg, n)
	}
	return total, nil
}

// FitAdjustment fits the §4.1 linear correction of the communication models
// from calibration samples (measured per-class Tc of multi-PE runs, e.g.
// the paper's N = 6400, P2 = 8, M1 sweep), one transform per PE class.
// Samples below the AdjustMinM threshold or from single-PE runs are
// ignored; classes without calibration samples stay uncorrected.
func (ms *ModelSet) FitAdjustment(samples []Sample) error {
	ms.Adjust = nil
	xs := make(map[int][]float64)
	ts := make(map[int][]float64)
	for _, s := range samples {
		if s.M < ms.AdjustMinM || s.P == s.M {
			continue
		}
		pt, ok := ms.PT[PTKey{Class: s.Class, M: s.M}]
		if !ok {
			return fmt.Errorf("%w: no P-T model for adjustment sample %v", ErrNoModel, PTKey{Class: s.Class, M: s.M})
		}
		// Only extrapolation-region samples calibrate the correction,
		// mirroring where it will be applied.
		if !pt.Extrapolating(s.P) {
			continue
		}
		xs[s.Class] = append(xs[s.Class], pt.Tc(float64(s.N), s.P))
		ts[s.Class] = append(ts[s.Class], s.Tc)
	}
	if len(xs) == 0 {
		return nil
	}
	// A pure scaling (rather than the paper's affine transform) is used so
	// the correction stays positive when applied far from the calibration
	// sizes; with calibration at a single large N the two are nearly
	// equivalent there.
	ms.Adjust = make(map[int]*stats.LinearTransform, len(xs))
	for class := range xs {
		lt, err := stats.FitScale(xs[class], ts[class])
		if err != nil {
			return err
		}
		ms.Adjust[class] = &lt
	}
	return nil
}

// Validate checks that the model set is structurally usable as an
// estimator: a positive class count, at least one N-T model, and every
// model keyed consistently within the class range with fully-populated
// coefficients. A decoded model file should be validated before use —
// json.Unmarshal accepts shapes (an empty object with a version, a pruned
// model list) that decode cleanly but cannot score any configuration.
func (ms *ModelSet) Validate() error {
	if ms == nil {
		return fmt.Errorf("%w: nil model set", ErrNoModel)
	}
	if ms.Classes <= 0 {
		return fmt.Errorf("%w: model set has %d classes", ErrNoModel, ms.Classes)
	}
	if len(ms.NT) == 0 {
		return fmt.Errorf("%w: model set has no N-T models", ErrNoModel)
	}
	for k, m := range ms.NT {
		if m == nil {
			return fmt.Errorf("%w: nil N-T model at %v", ErrNoModel, k)
		}
		if k.Class < 0 || k.Class >= ms.Classes {
			return fmt.Errorf("%w: N-T bin %v outside %d classes", ErrNoModel, k, ms.Classes)
		}
		if m.Key != k {
			return fmt.Errorf("%w: N-T model keyed %v stored at %v", ErrNoModel, m.Key, k)
		}
		if len(m.TaCoeff) != len(taDegrees) || len(m.TcCoeff) != len(tcDegrees) {
			return fmt.Errorf("%w: N-T model %v has %d Ta and %d Tc coefficients",
				ErrNoModel, k, len(m.TaCoeff), len(m.TcCoeff))
		}
	}
	for k, m := range ms.PT {
		if m == nil {
			return fmt.Errorf("%w: nil P-T model at %v", ErrNoModel, k)
		}
		if k.Class < 0 || k.Class >= ms.Classes {
			return fmt.Errorf("%w: P-T bin %v outside %d classes", ErrNoModel, k, ms.Classes)
		}
		if m.Key != k {
			return fmt.Errorf("%w: P-T model keyed %v stored at %v", ErrNoModel, m.Key, k)
		}
		if len(m.KaCoeff) != 2 || len(m.KcCoeff) != 3 {
			return fmt.Errorf("%w: P-T model %v has %d Ka and %d Kc coefficients",
				ErrNoModel, k, len(m.KaCoeff), len(m.KcCoeff))
		}
	}
	for class := range ms.Adjust {
		if class < 0 || class >= ms.Classes {
			return fmt.Errorf("%w: adjustment for class %d outside %d classes", ErrNoModel, class, ms.Classes)
		}
	}
	for _, c := range ms.Compositions {
		if c.Target < 0 || c.Target >= ms.Classes || c.Source < 0 || c.Source >= ms.Classes {
			return fmt.Errorf("%w: composition %d<-%d outside %d classes", ErrNoModel, c.Target, c.Source, ms.Classes)
		}
		if c.TaScale <= 0 || c.TcScale <= 0 {
			return fmt.Errorf("%w: composition %d<-%d has nonpositive scale", ErrNoModel, c.Target, c.Source)
		}
	}
	if ms.Bins != nil {
		for _, k := range ms.Bins.Keys() {
			for _, s := range ms.Bins.Samples(k) {
				if (PTKey{Class: s.Class, M: s.M}) != k {
					return fmt.Errorf("%w: bin %v holds sample keyed %v", ErrNoModel, k, PTKey{Class: s.Class, M: s.M})
				}
				if err := checkSample(s, ms.Classes); err != nil {
					return err
				}
			}
		}
		for _, s := range ms.Bins.Calibration() {
			if err := checkSample(s, ms.Classes); err != nil {
				return err
			}
		}
	}
	return nil
}

// Keys returns the N-T bins in deterministic order (for reports and tests).
func (ms *ModelSet) Keys() []Key {
	out := make([]Key, 0, len(ms.NT))
	for k := range ms.NT {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.M < b.M
	})
	return out
}

// PTKeys returns the P-T bins in deterministic order.
func (ms *ModelSet) PTKeys() []PTKey {
	out := make([]PTKey, 0, len(ms.PT))
	for k := range ms.PT {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.M < b.M
	})
	return out
}
