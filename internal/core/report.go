package core

import (
	"fmt"
	"strings"
)

// BinDiagnostic summarizes one fitted N-T bin's quality.
type BinDiagnostic struct {
	Key        Key
	Sizes      int
	TaR2, TcR2 float64
	// K0 is the leading (cubic) computation coefficient — the quantity
	// whose misfit drives the NS failure mode.
	K0 float64
	// Interpolating marks zero-degrees-of-freedom fits (exactly as many
	// sizes as coefficients), which interpolate noise instead of
	// averaging it.
	Interpolating bool
}

// Diagnostics reports the quality of every fitted model in the set, ordered
// deterministically.
func (ms *ModelSet) Diagnostics() []BinDiagnostic {
	var out []BinDiagnostic
	for _, key := range ms.Keys() {
		m := ms.NT[key]
		out = append(out, BinDiagnostic{
			Key:           key,
			Sizes:         len(m.Ns),
			TaR2:          m.TaR2,
			TcR2:          m.TcR2,
			K0:            m.TaCoeff[0],
			Interpolating: len(m.Ns) == len(taDegrees),
		})
	}
	return out
}

// SuspectBins returns the bins whose fits deserve distrust: negative or
// implausibly small leading coefficients (the model would predict sublinear
// large-N growth) or poor explained variance. These are exactly the bins
// that produce the paper's Table 9 pathology.
func (ms *ModelSet) SuspectBins() []BinDiagnostic {
	var out []BinDiagnostic
	for _, d := range ms.Diagnostics() {
		if d.K0 <= 0 || d.TaR2 < 0.99 {
			out = append(out, d)
		}
	}
	return out
}

// RenderDiagnostics prints the diagnostic table with a trailing summary.
func (ms *ModelSet) RenderDiagnostics() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Model diagnostics (%d N-T bins, %d P-T bins)\n", len(ms.NT), len(ms.PT))
	fmt.Fprintf(&b, "  %-18s %6s %10s %10s %14s %8s\n", "bin", "sizes", "Ta R2", "Tc R2", "k0", "0-DoF")
	for _, d := range ms.Diagnostics() {
		fmt.Fprintf(&b, "  %-18s %6d %10.6f %10.6f %14.3e %8v\n",
			d.Key, d.Sizes, d.TaR2, d.TcR2, d.K0, d.Interpolating)
	}
	suspects := ms.SuspectBins()
	if len(suspects) == 0 {
		fmt.Fprintf(&b, "  no suspect bins\n")
	} else {
		fmt.Fprintf(&b, "  %d suspect bin(s):", len(suspects))
		for _, d := range suspects {
			fmt.Fprintf(&b, " %s", d.Key)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
