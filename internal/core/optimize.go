package core

import (
	"fmt"
	"sort"

	"hetmodel/internal/cluster"
	"hetmodel/internal/parallel"
)

// Estimate is one scored candidate configuration.
type Estimate struct {
	Config cluster.Configuration
	// Tau is the estimated execution time (the paper's τ).
	Tau float64
	// Err is non-nil when the model set cannot estimate the configuration
	// (missing bin); such candidates are skipped by the optimizer.
	Err error
}

// EstimateAll scores every candidate configuration at problem size n,
// in the candidates' order, using GOMAXPROCS workers.
func (ms *ModelSet) EstimateAll(candidates []cluster.Configuration, n int) []Estimate {
	return ms.EstimateAllWorkers(candidates, n, 0)
}

// EstimateAllWorkers scores every candidate on up to `workers` goroutines
// (<= 0 selects GOMAXPROCS, 1 forces sequential evaluation). The model set
// is compiled once (see Compile) and the evaluator is read-only during
// estimation, each candidate fills its own slot, and the evaluator scores
// bit-identically to Estimate — so the output is identical at any worker
// count and to the uncompiled path.
func (ms *ModelSet) EstimateAllWorkers(candidates []cluster.Configuration, n, workers int) []Estimate {
	ev := ms.Compile(float64(n))
	out := make([]Estimate, len(candidates))
	parallel.ForEach(len(candidates), workers, func(i int) error {
		tau, err := ev.Estimate(candidates[i])
		out[i] = Estimate{Config: candidates[i], Tau: tau, Err: err}
		return nil
	})
	return out
}

// Optimize exhaustively evaluates the candidates (the paper examines every
// possible configuration, §5) and returns the one with the smallest
// estimated execution time. Candidates the model cannot score are skipped;
// an error is returned only when no candidate is scorable.
func (ms *ModelSet) Optimize(candidates []cluster.Configuration, n int) (cluster.Configuration, float64, error) {
	return ms.OptimizeWorkers(candidates, n, 0)
}

// OptimizeWorkers is Optimize with an explicit worker count (<= 0 selects
// GOMAXPROCS). Candidates are scored concurrently through a compiled
// evaluator without materializing a per-candidate []Estimate: each worker
// keeps its own best over the chunks it claims, and the per-worker bests
// are merged by (tau, candidate index) — a strictly smaller tau wins, so
// ties keep the earliest candidate — making the selected configuration
// identical to the sequential scan at any worker count.
func (ms *ModelSet) OptimizeWorkers(candidates []cluster.Configuration, n, workers int) (cluster.Configuration, float64, error) {
	return ms.Compile(float64(n)).Optimize(candidates, workers)
}

// Optimize returns the candidate with the smallest τ at the evaluator's
// compiled size, with OptimizeWorkers' contract (skip unscorable
// candidates, ties keep the earliest, identical at any worker count).
func (ev *Evaluator) Optimize(candidates []cluster.Configuration, workers int) (cluster.Configuration, float64, error) {
	w := parallel.Workers(workers, len(candidates))
	if w < 1 {
		w = 1
	}
	shards := make([]*parallel.TopK, w)
	parallel.Chunks(int64(len(candidates)), 1024, w, func(worker int, lo, hi int64) {
		if shards[worker] == nil {
			shards[worker] = parallel.NewTopK(1)
		}
		for i := lo; i < hi; i++ {
			if tau, ok := ev.Tau(candidates[i]); ok {
				shards[worker].Offer(i, tau)
			}
		}
	})
	lists := make([][]parallel.Candidate, 0, w)
	for _, sh := range shards {
		if sh != nil {
			lists = append(lists, sh.Sorted())
		}
	}
	merged := parallel.MergeTopK(1, lists)
	if len(merged) == 0 {
		return cluster.Configuration{}, 0, fmt.Errorf("%w: no scorable candidate among %d", ErrNoModel, len(candidates))
	}
	return candidates[merged[0].Index], merged[0].Score, nil
}

// OptimizeHeuristic implements the search-space reduction the paper lists
// as future work (§5): a coordinate-descent hill climb over the per-class
// (PEs, Procs) grid starting from the configuration that uses every PE with
// one process each. Each step evaluates only the ±1 neighbours of one
// coordinate, so the number of model evaluations is O(moves · classes)
// instead of the full grid product.
//
// space supplies the allowed values per coordinate (same shape as
// cluster.Space). Returns the local optimum found and the number of model
// evaluations spent.
func (ms *ModelSet) OptimizeHeuristic(space cluster.Space, n int) (cluster.Configuration, float64, int, error) {
	if len(space.PEChoices) != ms.Classes || len(space.ProcChoices) != ms.Classes {
		return cluster.Configuration{}, 0, 0, fmt.Errorf("%w: space/class mismatch", ErrNoModel)
	}
	// Start: maximum PEs, one process each (use all hardware plainly).
	cur := cluster.Configuration{Use: make([]cluster.ClassUse, ms.Classes)}
	for ci := range cur.Use {
		pes := append([]int(nil), space.PEChoices[ci]...)
		procs := append([]int(nil), space.ProcChoices[ci]...)
		sort.Ints(pes)
		sort.Ints(procs)
		cur.Use[ci] = cluster.ClassUse{PEs: pes[len(pes)-1], Procs: minPositive(procs)}
	}
	ev := ms.Compile(float64(n))
	evals := 0
	score := func(cfg cluster.Configuration) (float64, bool) {
		evals++
		return ev.Tau(cfg)
	}
	curTau, ok := score(cur)
	if !ok {
		return cluster.Configuration{}, 0, evals, fmt.Errorf("%w: start configuration not scorable", ErrNoModel)
	}
	improved := true
	for improved {
		improved = false
		for ci := 0; ci < ms.Classes; ci++ {
			for _, coord := range []int{0, 1} { // 0: PEs, 1: Procs
				choices := space.PEChoices[ci]
				if coord == 1 {
					choices = space.ProcChoices[ci]
				}
				curVal := cur.Use[ci].PEs
				if coord == 1 {
					curVal = cur.Use[ci].Procs
				}
				for _, v := range neighbours(choices, curVal) {
					cand := cur
					cand.Use = append([]cluster.ClassUse(nil), cur.Use...)
					if coord == 0 {
						cand.Use[ci].PEs = v
					} else {
						cand.Use[ci].Procs = v
					}
					cand = cand.Normalize()
					if cand.TotalProcs() == 0 {
						continue
					}
					if tau, ok := score(cand); ok && tau < curTau-1e-12 {
						cur, curTau = cand, tau
						improved = true
					}
				}
			}
		}
	}
	return cur.Normalize(), curTau, evals, nil
}

// neighbours returns the values adjacent to cur in the sorted choice list
// (plus the extreme opposite of zero, so "drop the class entirely" is
// reachable from any PE count).
func neighbours(choices []int, cur int) []int {
	s := append([]int(nil), choices...)
	sort.Ints(s)
	idx := -1
	for i, v := range s {
		if v == cur {
			idx = i
			break
		}
	}
	var out []int
	if idx > 0 {
		out = append(out, s[idx-1])
	}
	if idx >= 0 && idx < len(s)-1 {
		out = append(out, s[idx+1])
	}
	if idx == -1 && len(s) > 0 {
		out = append(out, s[0], s[len(s)-1])
	}
	// Allow jumping to zero (drop the class) when available — unless zero is
	// already among the adjacent choices, which would double-score the same
	// candidate and inflate the reported eval count.
	if len(s) > 0 && s[0] == 0 && cur != 0 {
		dup := false
		for _, v := range out {
			if v == 0 {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, 0)
		}
	}
	return out
}

func minPositive(sorted []int) int {
	for _, v := range sorted {
		if v > 0 {
			return v
		}
	}
	if len(sorted) == 0 {
		return 0
	}
	return sorted[len(sorted)-1]
}
