// Package chol implements a second parallel application on the simulated
// cluster: a right-looking blocked Cholesky factorization (A = L·Lᵀ) on a
// 1×P block-cyclic column distribution, instrumented with the same
// computation/communication timing decomposition as the HPL reproduction.
//
// The paper closes with "this study examined one specific application
// (HPL), but other parallel applications should also be examined" (§5);
// this package is that examination. Cholesky has the same asymptotic
// orders as LU (O(N³) compute, O(N²) panel broadcast), so the paper's N-T
// and P-T model forms apply unchanged — samples from chol feed
// internal/core directly, and the same optimizer picks PE configurations
// for it (see the package tests and examples/beyond-hpl).
//
// Like internal/hpl it runs in two modes: numeric (real arithmetic on the
// deterministic SPD Kac–Murdock–Szegő matrix, residual-checked) and phantom
// (timing only).
package chol

import (
	"fmt"
	"math"

	"hetmodel/internal/cluster"
	"hetmodel/internal/hpl"
	"hetmodel/internal/linalg"
	"hetmodel/internal/machine"
	"hetmodel/internal/vmpi"
)

// KMSRho is the correlation parameter of the generated SPD matrix.
const KMSRho = 0.9

// Params configures one distributed Cholesky run. The fields mirror
// hpl.Params (N, NB, Numeric, Bcast, noise controls); Seed is unused by the
// deterministic matrix generator but still seeds the measurement noise.
type Params = hpl.Params

// Result is the outcome of one run, reusing the HPL result layout: the
// detailed timing buckets have the same meaning, with Mxswp and Laswp
// identically zero (Cholesky needs no pivoting).
type Result = hpl.Result

// FlopCount returns the nominal Cholesky operation count N³/3 + 2·N².
func FlopCount(n int) float64 {
	nf := float64(n)
	return nf*nf*nf/3 + 2*nf*nf
}

// Run executes the distributed Cholesky factorization (plus a
// forward/backward solve) for the configuration on the cluster.
func Run(cl *cluster.Cluster, cfg cluster.Configuration, params Params) (*Result, error) {
	params = hpl.FillDefaults(params)
	if err := hpl.ValidateParams(params); err != nil {
		return nil, err
	}
	pl, err := cl.Place(cfg)
	if err != nil {
		return nil, err
	}
	P := pl.P()
	if params.N < P {
		return nil, fmt.Errorf("%w: N=%d smaller than P=%d", hpl.ErrBadParams, params.N, P)
	}
	lay := hpl.NewLayout(params.N, params.NB, P)

	nodeBytes := pl.NodeResidentBytes(func(rank int) float64 {
		return 8*float64(params.N)*float64(lay.LocalCols(rank)) +
			8*float64(params.N)*float64(params.NB) +
			params.WorkspaceBytes
	})
	mulBusy := make([]float64, P)
	mulSolo := make([]float64, P)
	offsets := make([]float64, P)
	cfgKey := "chol:" + cfg.Key()
	for r := 0; r < P; r++ {
		rp := pl.Ranks[r]
		pressure := rp.Type.PressureFactor(nodeBytes[rp.NodeID], rp.Node.MemoryBytes)
		jitter, offset := hpl.RunNoise(params.Seed, params.N, cfgKey, r, params.Noise, params.NoiseAbs)
		mulBusy[r] = rp.Type.MultiprocFactor(rp.Resident) * pressure * jitter
		mulSolo[r] = rp.Type.SoloFactor(rp.Resident) * pressure * jitter
		offsets[r] = offset
	}

	var states []*numState
	if params.Numeric {
		states = make([]*numState, P)
		for r := 0; r < P; r++ {
			states[r] = newNumState(lay, r)
		}
	}

	world, err := vmpi.NewWorld(P, pl.TransferTime)
	if err != nil {
		return nil, err
	}
	world.SetRendezvous(pl.Rendezvous)
	world.SetTracer(params.Tracer)
	res := hpl.NewResultShell(params, cfg.Normalize(), P)
	chainTag := func(j int) int { return lay.NumPanels() + j }
	barrierTag := 2*lay.NumPanels() + 16

	world.Run(func(p *vmpi.Proc) {
		rank := p.Rank()
		rp := pl.Ranks[rank]
		var st *numState
		if states != nil {
			st = states[rank]
		}
		var t hpl.RankTiming

		for j := 0; j < lay.NumPanels(); j++ {
			o := lay.Owner(j)
			nb := lay.Width(j)
			row0 := j * params.NB
			m := params.N - row0

			var payload *linalg.Matrix
			if rank == o {
				// Panel: potrf on the nb×nb diagonal block plus the
				// triangular solve producing the m−nb rows below it.
				flops := float64(nb)*float64(nb)*float64(nb)/3 +
					float64(m-nb)*float64(nb)*float64(nb)
				dt := rp.Type.KernelTime(machine.KindPanel, int(flops), m, 0) * mulSolo[rank]
				p.Advance(dt)
				t.Pfact += dt
				if st != nil {
					payload = st.factorPanel(j)
				}
			}

			bytes := 8 * float64(m*nb)
			data, elapsed := p.Bcast(o, j, payload, bytes, params.Bcast)
			t.Bcast += elapsed
			pm, _ := data.(*linalg.Matrix)

			// Symmetric trailing update restricted to this rank's
			// columns right of the panel: A22 -= L21·L21ᵀ. Unlike LU,
			// each trailing block only updates the rows from its own
			// diagonal down (the lower triangle) — about half of LU's
			// update flops. The whole panel update runs as one fused
			// kernel (a distributed dsyrk), so it is charged as a single
			// GEMM with the flop-equivalent average height.
			ct := lay.TrailingLocalCols(rank, j)
			if ct > 0 {
				var rowsTotal int
				for jj := rank; jj < lay.NumPanels(); jj += P {
					if jj > j {
						rowsTotal += (params.N - jj*params.NB) * lay.Width(jj)
					}
				}
				mEff := rowsTotal / ct
				dt := rp.Type.KernelTime(machine.KindGemm, mEff, ct, nb) * mulBusy[rank]
				p.Advance(dt)
				t.Update += dt
				if st != nil && pm != nil {
					st.update(j, pm)
				}
			}
		}

		// Forward + backward substitution chain (two sweeps of the HPL
		// uptrsv pattern); charged to the Uptrsv bucket like the paper
		// folds the solve into Ta.
		for j := lay.NumPanels() - 1; j >= 0; j-- {
			if lay.Owner(j) != rank {
				continue
			}
			nb := lay.Width(j)
			row0 := j * params.NB
			if j < lay.NumPanels()-1 && lay.Owner(j+1) != rank {
				_, wait := p.Recv(lay.Owner(j+1), chainTag(j+1))
				t.Uptrsv += wait
			}
			elems := 2 * (nb*nb + 2*row0*nb)
			rowLen := row0
			if rowLen < nb {
				rowLen = nb
			}
			dt := rp.Type.KernelTime(machine.KindRowOp, elems, rowLen, 0) * mulSolo[rank]
			p.Advance(dt)
			t.Uptrsv += dt
			if j > 0 && lay.Owner(j-1) != rank {
				t.Uptrsv += p.Send(lay.Owner(j-1), chainTag(j), nil, 8*float64(params.N))
			}
		}

		if off := offsets[rank]; off > 0 {
			p.Advance(off)
			t.Update += off
		}
		t.Wall = p.Clock()
		res.PerRank[rank] = t
		p.Barrier(barrierTag)
	})

	hpl.FinalizeResult(res, pl, len(cl.Classes), FlopCount(params.N))
	if params.Numeric {
		if err := validate(res, lay, states); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// numState is the per-rank numeric storage: full rows of the rank's
// block-cyclic column share, lower triangle meaningful.
type numState struct {
	lay   hpl.Layout
	rank  int
	local *linalg.Matrix
}

func newNumState(lay hpl.Layout, rank int) *numState {
	n := lay.N()
	st := &numState{lay: lay, rank: rank, local: linalg.NewMatrix(n, lay.LocalCols(rank))}
	data, stride := st.local.Data, st.local.Stride
	col := make([]float64, n)
	for j := rank; j < lay.NumPanels(); j += lay.P() {
		off := lay.LocalOffset(j)
		for c := 0; c < lay.Width(j); c++ {
			gc := j*lay.NB() + c
			linalg.KMSColumn(KMSRho, gc, col)
			for i, v := range col {
				data[i*stride+off+c] = v
			}
		}
	}
	return st
}

// factorPanel factorizes the owner's panel j in place: potrf on the
// diagonal block, then the triangular solve for the rows below. Returns the
// m×nb factored panel for broadcast.
func (st *numState) factorPanel(j int) *linalg.Matrix {
	lay := st.lay
	nb := lay.Width(j)
	off := lay.LocalOffset(j)
	row0 := j * lay.NB()
	n := lay.N()

	data, stride := st.local.Data, st.local.Stride
	panelRow := func(i int) []float64 {
		return data[i*stride+off : i*stride+off+nb]
	}
	for k := 0; k < nb; k++ {
		gk := row0 + k
		rg := panelRow(gk)
		d := rg[k] - linalg.Dot(rg[:k], rg[:k])
		if d <= 0 {
			panic(fmt.Sprintf("chol: matrix not positive definite at column %d", gk))
		}
		d = math.Sqrt(d)
		rg[k] = d
		inv := 1 / d
		for i := gk + 1; i < n; i++ {
			ri := panelRow(i)
			ri[k] = (ri[k] - linalg.Dot(ri[:k], rg[:k])) * inv
		}
	}
	panel := linalg.NewMatrix(n-row0, nb)
	for i := 0; i < n-row0; i++ {
		copy(panel.RowView(i), panelRow(row0+i))
	}
	return panel
}

// update applies the symmetric rank-nb update to the rank's trailing
// blocks: A[R, C] -= L[R, panel]·L[C, panel]ᵀ for R = rows from each
// block's diagonal down.
func (st *numState) update(j int, panel *linalg.Matrix) {
	lay := st.lay
	row0 := j * lay.NB()
	n := lay.N()
	for jj := st.rank; jj < lay.NumPanels(); jj += lay.P() {
		if jj <= j {
			continue
		}
		off := lay.LocalOffset(jj)
		w := lay.Width(jj)
		blockRow := jj * lay.NB()
		// L rows for this block's columns (w×nb), transposed.
		lc := panel.Slice(blockRow-row0, blockRow-row0+w, 0, panel.Cols)
		lct := lc.Transpose()
		lr := panel.Slice(blockRow-row0, n-row0, 0, panel.Cols)
		a22 := st.local.Slice(blockRow, n, off, off+w)
		if err := linalg.MulAdd(-1, lr, lct, a22); err != nil {
			panic(fmt.Sprintf("chol: update failed: %v", err))
		}
	}
}

// validate reassembles L, solves A·x = b, and records the residual.
func validate(res *Result, lay hpl.Layout, states []*numState) error {
	n := lay.N()
	l := linalg.NewMatrix(n, n)
	for rank, st := range states {
		data, stride := st.local.Data, st.local.Stride
		for j := rank; j < lay.NumPanels(); j += lay.P() {
			off := lay.LocalOffset(j)
			for c := 0; c < lay.Width(j); c++ {
				gc := j*lay.NB() + c
				for i := gc; i < n; i++ {
					l.Data[i*n+gc] = data[i*stride+off+c]
				}
			}
		}
	}
	chol := &linalg.Cholesky{L: l}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 / float64(i+1)
	}
	x, err := chol.Solve(b)
	if err != nil {
		return fmt.Errorf("chol: solve: %w", err)
	}
	a := linalg.KMSMatrix(n, KMSRho)
	resid, err := linalg.HPLResidual(a, x, b)
	if err != nil {
		return fmt.Errorf("chol: residual: %w", err)
	}
	res.Solution = x
	res.Residual = resid
	return nil
}
