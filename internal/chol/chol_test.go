package chol

import (
	"math"
	"testing"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/hpl"
	"hetmodel/internal/linalg"
	"hetmodel/internal/measure"
	"hetmodel/internal/simnet"
)

func paperCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.NewPaper(simnet.NewMPICH122())
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func cfg(p1, m1, p2, m2 int) cluster.Configuration {
	return cluster.Configuration{Use: []cluster.ClassUse{{PEs: p1, Procs: m1}, {PEs: p2, Procs: m2}}}
}

func TestNumericSingleRank(t *testing.T) {
	cl := paperCluster(t)
	res, err := Run(cl, cfg(1, 1, 0, 0), Params{N: 96, NB: 16, Numeric: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 16 {
		t.Fatalf("residual = %v", res.Residual)
	}
	// Cross-check against the sequential reference factorization.
	a := linalg.KMSMatrix(96, KMSRho)
	ref, err := linalg.FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 96)
	for i := range b {
		b[i] = 1 / float64(i+1)
	}
	want, err := ref.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(res.Solution[i]-want[i]) > 1e-8 {
			t.Fatalf("x[%d]: distributed %v vs reference %v", i, res.Solution[i], want[i])
		}
	}
}

func TestNumericDistributedMatchesSingleRank(t *testing.T) {
	cl := paperCluster(t)
	single, err := Run(cl, cfg(1, 1, 0, 0), Params{N: 120, NB: 16, Numeric: true})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(cl, cfg(1, 2, 3, 1), Params{N: 120, NB: 16, Numeric: true})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Residual > 16 {
		t.Fatalf("distributed residual = %v", multi.Residual)
	}
	for i := range single.Solution {
		if math.Abs(single.Solution[i]-multi.Solution[i]) > 1e-8 {
			t.Fatalf("x[%d] differs: %v vs %v", i, single.Solution[i], multi.Solution[i])
		}
	}
}

func TestNumericPartialLastPanel(t *testing.T) {
	cl := paperCluster(t)
	res, err := Run(cl, cfg(1, 1, 2, 1), Params{N: 101, NB: 16, Numeric: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 16 {
		t.Fatalf("residual = %v", res.Residual)
	}
}

func TestPhantomStructure(t *testing.T) {
	cl := paperCluster(t)
	res, err := Run(cl, cfg(1, 2, 8, 1), Params{N: 1600})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallTime <= 0 || res.Gflops <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	for r, rt := range res.PerRank {
		// Cholesky has no pivoting: those buckets stay zero.
		if rt.Mxswp != 0 || rt.Laswp != 0 {
			t.Fatalf("rank %d has pivot phases: %+v", r, rt)
		}
		if rt.Update < 0 || rt.Bcast < 0 {
			t.Fatalf("rank %d negative phases: %+v", r, rt)
		}
	}
	// Cholesky does half of LU's flops: wall time should be well below the
	// HPL run of the same configuration.
	lu, err := hpl.Run(cl, cfg(1, 2, 8, 1), hpl.Params{N: 1600})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallTime >= lu.WallTime {
		t.Fatalf("Cholesky (%.2f s) should beat LU (%.2f s)", res.WallTime, lu.WallTime)
	}
}

func TestValidatesParams(t *testing.T) {
	cl := paperCluster(t)
	if _, err := Run(cl, cfg(1, 1, 0, 0), Params{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := Run(cl, cfg(1, 6, 8, 6), Params{N: 10}); err == nil {
		t.Fatal("N < P accepted")
	}
}

func TestDeterministic(t *testing.T) {
	cl := paperCluster(t)
	a, _ := Run(cl, cfg(1, 3, 8, 1), Params{N: 2400})
	b, _ := Run(cl, cfg(1, 3, 8, 1), Params{N: 2400})
	if a.WallTime != b.WallTime {
		t.Fatalf("nondeterministic: %v vs %v", a.WallTime, b.WallTime)
	}
}

func TestFlopCount(t *testing.T) {
	want := 1000.0*1000*1000/3 + 2*1000*1000
	if got := FlopCount(1000); math.Abs(got-want) > 1 {
		t.Fatalf("FlopCount = %v", got)
	}
}

// The headline: the paper's estimation-model pipeline, trained on Cholesky
// samples instead of HPL ones, still picks a good configuration — the
// "other parallel applications" the paper leaves to future study.
func TestModelPipelineOnCholesky(t *testing.T) {
	cl := paperCluster(t)

	// Construction campaign (NL-shaped) measured with Cholesky runs.
	athlonSpace, piiSpace := cluster.PaperConstructionSpace([]int{1, 2, 4, 8})
	var samples []core.Sample
	collect := func(space cluster.Space) {
		cfgs, err := space.Enumerate()
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1600, 3200, 4800, 6400} {
			for _, c := range cfgs {
				r, err := Run(cl, c, Params{N: n})
				if err != nil {
					t.Fatal(err)
				}
				samples = append(samples, measure.SamplesFromResult(r)...)
			}
		}
	}
	collect(athlonSpace)
	collect(piiSpace)

	ms, err := core.Build(len(cl.Classes), samples)
	if err != nil {
		t.Fatal(err)
	}
	taScale, err := ms.FitCompositionScale(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.ComposeClass(0, 1, taScale, 0.85); err != nil {
		t.Fatal(err)
	}
	var calib []core.Sample
	for m1 := 1; m1 <= 6; m1++ {
		r, err := Run(cl, cfg(1, m1, 8, 1), Params{N: 6400})
		if err != nil {
			t.Fatal(err)
		}
		calib = append(calib, measure.SamplesFromResult(r)...)
	}
	if err := ms.FitAdjustment(calib); err != nil {
		t.Fatal(err)
	}

	// Evaluate at N = 8000 (extrapolated): the pick must be near-optimal.
	candidates, err := cluster.PaperEvaluationSpace().Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	best, _, err := ms.Optimize(candidates, 8000)
	if err != nil {
		t.Fatal(err)
	}
	bestRun, err := Run(cl, best, Params{N: 8000})
	if err != nil {
		t.Fatal(err)
	}
	actT := math.Inf(1)
	for _, c := range candidates {
		r, err := Run(cl, c, Params{N: 8000})
		if err != nil {
			t.Fatal(err)
		}
		if r.WallTime < actT {
			actT = r.WallTime
		}
	}
	penalty := (bestRun.WallTime - actT) / actT
	if penalty > 0.15 {
		t.Fatalf("Cholesky model pick costs %.1f%% over optimal (config %s)", penalty*100, best)
	}
}
