package des

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrdering(t *testing.T) {
	var sim Simulation
	var order []int
	sim.Schedule(2, func() { order = append(order, 2) })
	sim.Schedule(1, func() { order = append(order, 1) })
	sim.Schedule(3, func() { order = append(order, 3) })
	end := sim.Run()
	if end != 3 {
		t.Fatalf("end time = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if sim.Processed != 3 {
		t.Fatalf("processed = %d", sim.Processed)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var sim Simulation
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		sim.Schedule(5, func() { order = append(order, i) })
	}
	sim.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestPastEventClamped(t *testing.T) {
	var sim Simulation
	sim.Schedule(10, func() {
		sim.Schedule(5, func() {}) // in the past → clamped to now
	})
	end := sim.Run()
	if end != 10 {
		t.Fatalf("end = %v, want 10 (clamped)", end)
	}
}

func TestNaNClamped(t *testing.T) {
	var sim Simulation
	fired := false
	sim.Schedule(math.NaN(), func() { fired = true })
	sim.Run()
	if !fired || sim.Now() != 0 {
		t.Fatalf("NaN schedule mishandled: fired=%v now=%v", fired, sim.Now())
	}
}

func TestAfter(t *testing.T) {
	var sim Simulation
	var at float64
	sim.Schedule(4, func() {
		sim.After(3, func() { at = sim.Now() })
	})
	sim.Run()
	if at != 7 {
		t.Fatalf("After fired at %v", at)
	}
	// Negative delays clamp to zero delay.
	var sim2 Simulation
	sim2.After(-5, func() {})
	if sim2.Run() != 0 {
		t.Fatal("negative delay not clamped")
	}
}

func TestNilAction(t *testing.T) {
	var sim Simulation
	if err := sim.Schedule(1, nil); err == nil {
		t.Fatal("nil action should error")
	}
}

func TestRunUntil(t *testing.T) {
	var sim Simulation
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		sim.Schedule(at, func() { fired = append(fired, at) })
	}
	n := sim.RunUntil(3)
	if n != 3 || len(fired) != 3 {
		t.Fatalf("RunUntil executed %d (%v)", n, fired)
	}
	if sim.Now() != 3 || sim.Pending() != 2 {
		t.Fatalf("now=%v pending=%d", sim.Now(), sim.Pending())
	}
	// Deadline beyond all events advances the clock to the deadline.
	sim.RunUntil(100)
	if sim.Now() != 100 {
		t.Fatalf("now = %v, want 100", sim.Now())
	}
}

func TestStop(t *testing.T) {
	var sim Simulation
	sim.Schedule(1, func() {})
	sim.Stop()
	if sim.Step() {
		t.Fatal("Step after Stop should be false")
	}
	if err := sim.Schedule(2, func() {}); !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
}

func TestCascadingEvents(t *testing.T) {
	var sim Simulation
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			sim.After(1, tick)
		}
	}
	sim.Schedule(0, tick)
	end := sim.Run()
	if count != 100 || end != 99 {
		t.Fatalf("count=%d end=%v", count, end)
	}
}

// Property: events always execute in nondecreasing time order.
func TestMonotonicClockProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var sim Simulation
		var times []float64
		for i := 0; i < 50; i++ {
			sim.Schedule(rng.Float64()*100, func() { times = append(times, sim.Now()) })
		}
		sim.Run()
		return sort.Float64sAreSorted(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
