package des

import (
	"math/rand"
	"sort"
	"testing"
)

func TestRescheduleReorders(t *testing.T) {
	var s Simulation
	var order []string
	mk := func(name string) func() {
		return func() { order = append(order, name) }
	}
	a, err := s.ScheduleEvent(10, mk("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ScheduleEvent(20, mk("b")); err != nil {
		t.Fatal(err)
	}
	c, err := s.ScheduleEvent(30, mk("c"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Reschedule(a, 25) { // a: 10 -> 25
		t.Fatal("Reschedule(a) reported not pending")
	}
	if !s.Reschedule(c, 5) { // c: 30 -> 5
		t.Fatal("Reschedule(c) reported not pending")
	}
	if got := s.Run(); got != 25 {
		t.Fatalf("final time = %v, want 25", got)
	}
	want := []string{"c", "b", "a"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRescheduleExecutedEventRefused(t *testing.T) {
	var s Simulation
	ev, err := s.ScheduleEvent(1, func() {})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if s.Reschedule(ev, 5) {
		t.Fatal("Reschedule of an executed event reported pending")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after refused reschedule", s.Pending())
	}
}

func TestReschedulePastClampsToNow(t *testing.T) {
	var s Simulation
	if err := s.Schedule(10, func() {}); err != nil {
		t.Fatal(err)
	}
	var fired float64
	ev, err := s.ScheduleEvent(50, func() { fired = s.Now() })
	if err != nil {
		t.Fatal(err)
	}
	if !s.Step() { // now = 10
		t.Fatal("Step had no event")
	}
	if !s.Reschedule(ev, 3) {
		t.Fatal("Reschedule reported not pending")
	}
	s.Run()
	if fired != 10 {
		t.Fatalf("clamped event fired at %v, want 10 (= Now at reschedule)", fired)
	}
}

func TestRescheduleTieBreaksAsNewlyScheduled(t *testing.T) {
	var s Simulation
	var order []int
	ev, err := s.ScheduleEvent(5, func() { order = append(order, 0) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		i := i
		if err := s.Schedule(5, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	// Moving ev (even to its own time) demotes it behind the existing
	// time-5 events: a moved event counts as newly scheduled.
	if !s.Reschedule(ev, 5) {
		t.Fatal("Reschedule reported not pending")
	}
	s.Run()
	want := []int{1, 2, 3, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestHeapStressAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var s Simulation
	const n = 500
	evs := make([]*Event, 0, n)
	for i := 0; i < n; i++ {
		ev, err := s.ScheduleEvent(rng.Float64()*100, func() {})
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	// Randomly move a third of the events, then verify pop order equals a
	// stable sort on (At, seq).
	for i := 0; i < n/3; i++ {
		if !s.Reschedule(evs[rng.Intn(n)], rng.Float64()*100) {
			t.Fatal("Reschedule reported not pending")
		}
	}
	pending := append([]*Event(nil), s.queue.evs...)
	sort.SliceStable(pending, func(i, j int) bool {
		if pending[i].At != pending[j].At {
			return pending[i].At < pending[j].At
		}
		return pending[i].seq < pending[j].seq
	})
	for i, want := range pending {
		got := s.queue.pop()
		if got != want {
			t.Fatalf("pop %d: got event at %v seq %d, want at %v seq %d",
				i, got.At, got.seq, want.At, want.seq)
		}
	}
}
