package des

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSharedLinkSingleTransfer(t *testing.T) {
	l, err := NewSharedLink(100)
	if err != nil {
		t.Fatal(err)
	}
	var finish float64
	l.Start(0, 200, func(f float64) { finish = f })
	l.Drain()
	if finish != 2 {
		t.Fatalf("finish = %v, want 2", finish)
	}
}

func TestSharedLinkEqualSharing(t *testing.T) {
	l, _ := NewSharedLink(100)
	var finishes []float64
	done := func(f float64) { finishes = append(finishes, f) }
	// Two equal transfers starting together each get 50 B/s.
	l.Start(0, 100, done)
	l.Start(0, 100, done)
	l.Drain()
	if len(finishes) != 2 || finishes[0] != 2 || finishes[1] != 2 {
		t.Fatalf("finishes = %v", finishes)
	}
}

func TestSharedLinkStaggeredTransfers(t *testing.T) {
	l, _ := NewSharedLink(100)
	var f1, f2 float64
	l.Start(0, 100, func(f float64) { f1 = f })
	// Second transfer joins at t=0.5 when 50 bytes of the first remain.
	l.Start(0.5, 100, func(f float64) { f2 = f })
	l.Drain()
	// From 0.5 both share 50 B/s. First has 50 left → done at 1.5.
	// Second then has 50 left with full 100 B/s → done at 2.0.
	if math.Abs(f1-1.5) > 1e-9 || math.Abs(f2-2.0) > 1e-9 {
		t.Fatalf("f1=%v f2=%v", f1, f2)
	}
}

func TestSharedLinkErrors(t *testing.T) {
	if _, err := NewSharedLink(0); err == nil {
		t.Fatal("zero capacity should fail")
	}
	l, _ := NewSharedLink(10)
	if err := l.Start(0, 0, nil); err == nil {
		t.Fatal("zero size should fail")
	}
}

func TestSharedLinkIdleAdvance(t *testing.T) {
	l, _ := NewSharedLink(10)
	l.Start(5, 10, nil)
	l.Drain()
	if l.Now() != 6 {
		t.Fatalf("now = %v, want 6", l.Now())
	}
	if l.Active() != 0 {
		t.Fatal("transfer still active")
	}
}

func TestFairShareFinishTimesClosedForm(t *testing.T) {
	// sizes 100, 100 on capacity 100 → both at t=2.
	out, err := FairShareFinishTimes(100, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-2) > 1e-9 || math.Abs(out[1]-2) > 1e-9 {
		t.Fatalf("out = %v", out)
	}
	// sizes 50, 100: first finishes at t=1 (rate 50), second gets full rate
	// for its remaining 50 → t = 1 + 0.5.
	out, _ = FairShareFinishTimes(100, []float64{50, 100})
	if math.Abs(out[0]-1) > 1e-9 || math.Abs(out[1]-1.5) > 1e-9 {
		t.Fatalf("out = %v", out)
	}
}

func TestFairShareErrors(t *testing.T) {
	if _, err := FairShareFinishTimes(0, []float64{1}); err == nil {
		t.Fatal("zero capacity should fail")
	}
	if _, err := FairShareFinishTimes(10, []float64{0}); err == nil {
		t.Fatal("zero size should fail")
	}
}

// Property: the event-driven SharedLink agrees with the closed form when all
// transfers start at time zero.
func TestSharedLinkMatchesClosedFormProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		sizes := make([]float64, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Float64()*100
		}
		want, err := FairShareFinishTimes(50, sizes)
		if err != nil {
			return false
		}
		l, _ := NewSharedLink(50)
		var got []float64
		for _, s := range sizes {
			l.Start(0, s, func(f float64) { got = append(got, f) })
		}
		l.Drain()
		sort.Float64s(got)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: total bytes moved per unit time never exceeds capacity —
// the makespan of any batch is at least sum(sizes)/capacity.
func TestSharedLinkWorkConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		sizes := make([]float64, n)
		var total float64
		for i := range sizes {
			sizes[i] = 1 + rng.Float64()*50
			total += sizes[i]
		}
		out, err := FairShareFinishTimes(20, sizes)
		if err != nil {
			return false
		}
		makespan := out[len(out)-1]
		// Work conservation: last finish exactly total/capacity when the
		// link is never idle (all start at 0).
		return math.Abs(makespan-total/20) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
