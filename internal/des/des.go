// Package des implements a small deterministic discrete-event simulation
// kernel: a virtual clock and a time-ordered event queue with stable FIFO
// ordering for simultaneous events.
//
// It is the foundation for the contention-aware network experiments and for
// the fine-grained validation tests of the virtual-time MPI runtime; the
// production HPL simulator advances per-rank virtual clocks directly (see
// internal/vmpi) and only falls back to the kernel where global ordering
// matters.
package des

import (
	"errors"
	"math"
)

// ErrStopped reports scheduling into a simulation that has been stopped.
var ErrStopped = errors.New("des: simulation stopped")

// Event is a scheduled callback. The callback runs with the simulation
// clock set to its timestamp and may schedule further events.
type Event struct {
	At     float64
	Action func()

	seq   uint64
	index int // position in the heap; -1 once executed or rescinded
}

// Simulation is a discrete-event simulation. The zero value is ready to use.
type Simulation struct {
	now     float64
	queue   eventQueue
	seq     uint64
	stopped bool
	// Processed counts events executed so far.
	Processed uint64
}

// Now returns the current virtual time.
func (s *Simulation) Now() float64 { return s.now }

// Schedule registers action to run at absolute virtual time at. Events in
// the past (at < Now) are clamped to Now. Events at identical times run in
// scheduling order (FIFO), which keeps runs deterministic.
func (s *Simulation) Schedule(at float64, action func()) error {
	_, err := s.ScheduleEvent(at, action)
	return err
}

// ScheduleEvent is Schedule returning the event handle, which can later be
// moved in time with Reschedule.
func (s *Simulation) ScheduleEvent(at float64, action func()) (*Event, error) {
	if s.stopped {
		return nil, ErrStopped
	}
	if action == nil {
		return nil, errors.New("des: nil action")
	}
	if at < s.now || math.IsNaN(at) {
		at = s.now
	}
	ev := &Event{At: at, Action: action, seq: s.seq}
	s.seq++
	s.queue.push(ev)
	return ev, nil
}

// Reschedule moves a pending event to absolute time at (clamped to Now),
// sifting it to its new heap position in place — no pop/push pair, no
// reallocation. It reports whether the event was still pending; executed or
// stopped-out events are left untouched.
func (s *Simulation) Reschedule(ev *Event, at float64) bool {
	if s.stopped || ev == nil || ev.index < 0 || ev.index >= len(s.queue.evs) || s.queue.evs[ev.index] != ev {
		return false
	}
	if at < s.now || math.IsNaN(at) {
		at = s.now
	}
	ev.At = at
	// Keep FIFO fairness among equal timestamps: a moved event counts as
	// newly scheduled.
	ev.seq = s.seq
	s.seq++
	s.queue.fix(ev.index)
	return true
}

// After schedules action delay units after the current time.
func (s *Simulation) After(delay float64, action func()) error {
	if delay < 0 {
		delay = 0
	}
	return s.Schedule(s.now+delay, action)
}

// Step executes the next event, returning false when the queue is empty.
func (s *Simulation) Step() bool {
	if s.stopped || s.queue.len() == 0 {
		return false
	}
	ev := s.queue.pop()
	s.now = ev.At
	s.Processed++
	ev.Action()
	return true
}

// Run executes events until the queue drains and returns the final time.
func (s *Simulation) Run() float64 {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline; the clock never
// passes the deadline. It returns the number of events executed.
func (s *Simulation) RunUntil(deadline float64) uint64 {
	var n uint64
	for !s.stopped && s.queue.len() > 0 && s.queue.evs[0].At <= deadline {
		s.Step()
		n++
	}
	if s.now < deadline && !s.stopped {
		s.now = deadline
	}
	return n
}

// Stop halts the simulation; pending events are discarded and further
// scheduling fails with ErrStopped.
func (s *Simulation) Stop() {
	s.stopped = true
	s.queue.evs = nil
}

// Pending returns the number of queued events.
func (s *Simulation) Pending() int { return s.queue.len() }

// eventQueue is a hand-rolled binary min-heap over (At, seq) with index
// tracking, replacing container/heap to avoid its interface boxing and to
// allow in-place sifting for Reschedule.
type eventQueue struct {
	evs []*Event
}

func (q *eventQueue) len() int { return len(q.evs) }

func (q *eventQueue) less(i, j int) bool {
	a, b := q.evs[i], q.evs[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(ev *Event) {
	ev.index = len(q.evs)
	q.evs = append(q.evs, ev)
	q.siftUp(ev.index)
}

// pop removes and returns the minimum: the last leaf replaces the root and
// sifts down in place.
func (q *eventQueue) pop() *Event {
	root := q.evs[0]
	last := len(q.evs) - 1
	q.evs[0] = q.evs[last]
	q.evs[0].index = 0
	q.evs[last] = nil
	q.evs = q.evs[:last]
	if last > 0 {
		q.siftDown(0)
	}
	root.index = -1
	return root
}

// fix restores heap order after the element at i changed priority.
func (q *eventQueue) fix(i int) {
	if !q.siftDown(i) {
		q.siftUp(i)
	}
}

func (q *eventQueue) siftUp(i int) {
	ev := q.evs[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.evs[i], q.evs[parent] = q.evs[parent], q.evs[i]
		q.evs[i].index = i
		ev.index = parent
		i = parent
	}
}

// siftDown reports whether the element moved.
func (q *eventQueue) siftDown(i int) bool {
	start := i
	n := len(q.evs)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		m := left
		if right := left + 1; right < n && q.less(right, left) {
			m = right
		}
		if !q.less(m, i) {
			break
		}
		q.evs[i], q.evs[m] = q.evs[m], q.evs[i]
		q.evs[i].index = i
		q.evs[m].index = m
		i = m
	}
	return i > start
}
