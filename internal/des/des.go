// Package des implements a small deterministic discrete-event simulation
// kernel: a virtual clock and a time-ordered event queue with stable FIFO
// ordering for simultaneous events.
//
// It is the foundation for the contention-aware network experiments and for
// the fine-grained validation tests of the virtual-time MPI runtime; the
// production HPL simulator advances per-rank virtual clocks directly (see
// internal/vmpi) and only falls back to the kernel where global ordering
// matters.
package des

import (
	"container/heap"
	"errors"
	"math"
)

// ErrStopped reports scheduling into a simulation that has been stopped.
var ErrStopped = errors.New("des: simulation stopped")

// Event is a scheduled callback. The callback runs with the simulation
// clock set to its timestamp and may schedule further events.
type Event struct {
	At     float64
	Action func()

	seq   uint64
	index int
}

// Simulation is a discrete-event simulation. The zero value is ready to use.
type Simulation struct {
	now     float64
	queue   eventQueue
	seq     uint64
	stopped bool
	// Processed counts events executed so far.
	Processed uint64
}

// Now returns the current virtual time.
func (s *Simulation) Now() float64 { return s.now }

// Schedule registers action to run at absolute virtual time at. Events in
// the past (at < Now) are clamped to Now. Events at identical times run in
// scheduling order (FIFO), which keeps runs deterministic.
func (s *Simulation) Schedule(at float64, action func()) error {
	if s.stopped {
		return ErrStopped
	}
	if action == nil {
		return errors.New("des: nil action")
	}
	if at < s.now || math.IsNaN(at) {
		at = s.now
	}
	ev := &Event{At: at, Action: action, seq: s.seq}
	s.seq++
	heap.Push(&s.queue, ev)
	return nil
}

// After schedules action delay units after the current time.
func (s *Simulation) After(delay float64, action func()) error {
	if delay < 0 {
		delay = 0
	}
	return s.Schedule(s.now+delay, action)
}

// Step executes the next event, returning false when the queue is empty.
func (s *Simulation) Step() bool {
	if s.stopped || s.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*Event)
	s.now = ev.At
	s.Processed++
	ev.Action()
	return true
}

// Run executes events until the queue drains and returns the final time.
func (s *Simulation) Run() float64 {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline; the clock never
// passes the deadline. It returns the number of events executed.
func (s *Simulation) RunUntil(deadline float64) uint64 {
	var n uint64
	for !s.stopped && s.queue.Len() > 0 && s.queue[0].At <= deadline {
		s.Step()
		n++
	}
	if s.now < deadline && !s.stopped {
		s.now = deadline
	}
	return n
}

// Stop halts the simulation; pending events are discarded and further
// scheduling fails with ErrStopped.
func (s *Simulation) Stop() {
	s.stopped = true
	s.queue = nil
}

// Pending returns the number of queued events.
func (s *Simulation) Pending() int { return s.queue.Len() }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
