package des

import (
	"errors"
	"sort"
)

// SharedLink models a bandwidth-shared resource (e.g. a node's NIC) using
// max-min fair processor sharing: k concurrent transfers each progress at
// capacity/k bytes per unit time. It is used by the contention extension
// experiments to quantify what the paper's homogeneous-network assumption
// ignores.
type SharedLink struct {
	// Capacity is the link bandwidth in bytes per second.
	Capacity float64

	active []*transfer
	now    float64
}

type transfer struct {
	remaining float64
	done      func(finish float64)
}

// ErrBadTransfer reports a nonpositive transfer size or capacity.
var ErrBadTransfer = errors.New("des: transfer size and capacity must be positive")

// NewSharedLink returns a link with the given capacity (bytes/second).
func NewSharedLink(capacity float64) (*SharedLink, error) {
	if capacity <= 0 {
		return nil, ErrBadTransfer
	}
	return &SharedLink{Capacity: capacity}, nil
}

// Start begins a transfer of size bytes at virtual time at; done is invoked
// with the finish time once the transfer completes (after Finish* calls
// process the timeline). Transfers may overlap; overlapping transfers share
// bandwidth equally.
func (l *SharedLink) Start(at float64, size float64, done func(finish float64)) error {
	if size <= 0 {
		return ErrBadTransfer
	}
	l.advance(at)
	l.active = append(l.active, &transfer{remaining: size, done: done})
	return nil
}

// advance progresses all active transfers to time t, completing any that
// finish on the way.
func (l *SharedLink) advance(t float64) {
	for t > l.now {
		if len(l.active) == 0 {
			l.now = t
			return
		}
		rate := l.Capacity / float64(len(l.active))
		// Find the earliest completion among active transfers.
		minRem := l.active[0].remaining
		for _, tr := range l.active[1:] {
			if tr.remaining < minRem {
				minRem = tr.remaining
			}
		}
		finishAt := l.now + minRem/rate
		if finishAt > t {
			// Nothing completes before t; drain partial progress.
			progress := (t - l.now) * rate
			for _, tr := range l.active {
				tr.remaining -= progress
			}
			l.now = t
			return
		}
		// Complete every transfer that reaches zero at finishAt.
		progress := minRem
		var still []*transfer
		var finished []*transfer
		for _, tr := range l.active {
			tr.remaining -= progress
			if tr.remaining <= 1e-9 {
				finished = append(finished, tr)
			} else {
				still = append(still, tr)
			}
		}
		l.active = still
		l.now = finishAt
		for _, tr := range finished {
			if tr.done != nil {
				tr.done(finishAt)
			}
		}
	}
}

// Drain runs the link until all transfers complete and returns the time the
// last one finished (or the current time when idle).
func (l *SharedLink) Drain() float64 {
	for len(l.active) > 0 {
		rate := l.Capacity / float64(len(l.active))
		minRem := l.active[0].remaining
		for _, tr := range l.active[1:] {
			if tr.remaining < minRem {
				minRem = tr.remaining
			}
		}
		l.advance(l.now + minRem/rate)
	}
	return l.now
}

// Active returns the number of in-flight transfers.
func (l *SharedLink) Active() int { return len(l.active) }

// Now returns the link's local virtual time.
func (l *SharedLink) Now() float64 { return l.now }

// FairShareFinishTimes computes, analytically, the finish times of a set of
// transfers all starting at time 0 on a fair-shared link, without callbacks.
// It is the closed-form counterpart of SharedLink used in tests and fast
// estimations. The result is sorted ascending.
func FairShareFinishTimes(capacity float64, sizes []float64) ([]float64, error) {
	if capacity <= 0 {
		return nil, ErrBadTransfer
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, ErrBadTransfer
		}
	}
	rem := append([]float64(nil), sizes...)
	sort.Float64s(rem)
	out := make([]float64, 0, len(rem))
	now, done := 0.0, 0
	prev := 0.0
	for done < len(rem) {
		k := float64(len(rem) - done)
		rate := capacity / k
		// The smallest remaining transfer finishes next.
		segment := (rem[done] - prev) / rate
		now += segment
		prev = rem[done]
		// All transfers with this size finish together.
		for done < len(rem) && rem[done] == prev {
			out = append(out, now)
			done++
		}
	}
	return out, nil
}
