// Benchmarks regenerating every table and figure of the paper (DESIGN.md §4)
// plus the ablations of §6. Each BenchmarkTableN/BenchmarkFigureN target
// measures the full regeneration of that artifact on the simulated testbed;
// the ablation benchmarks compare the design alternatives called out in
// DESIGN.md.
package hetmodel_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hetmodel"
	"hetmodel/internal/chol"
	"hetmodel/internal/cluster"
	"hetmodel/internal/experiments"
	"hetmodel/internal/hpl"
	"hetmodel/internal/hpl2d"
	"hetmodel/internal/linalg"
	"hetmodel/internal/lsq"
	"hetmodel/internal/measure"
	"hetmodel/internal/simnet"
)

// Shared fixtures: building the three models is expensive; benchmarks that
// only evaluate them reuse one build.
var (
	fixtureOnce sync.Once
	fixtureCtx  *experiments.Context
	fixtureBM   map[string]*experiments.BuiltModel
	fixtureErr  error
)

func fixtures(b *testing.B) (*experiments.Context, map[string]*experiments.BuiltModel) {
	b.Helper()
	fixtureOnce.Do(func() {
		fixtureCtx, fixtureErr = experiments.NewPaperContext()
		if fixtureErr != nil {
			return
		}
		fixtureBM = map[string]*experiments.BuiltModel{}
		for _, camp := range []measure.Campaign{
			measure.BasicCampaign(), measure.NLCampaign(), measure.NSCampaign(),
		} {
			bm, err := fixtureCtx.BuildModel(camp)
			if err != nil {
				fixtureErr = err
				return
			}
			fixtureBM[camp.Name] = bm
		}
	})
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return fixtureCtx, fixtureBM
}

// BenchmarkFigure1 regenerates the single-Athlon multiprocessing sweep for
// both MPICH presets (paper Figure 1(a)+(b)).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, lib := range []*simnet.CommLibrary{simnet.NewMPICH121(), simnet.NewMPICH122()} {
			if _, err := experiments.Figure1(lib, hpl.Params{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure2 regenerates the NetPIPE throughput sweeps (Figure 2).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, lib := range []*simnet.CommLibrary{simnet.NewMPICH121(), simnet.NewMPICH122()} {
			if _, err := experiments.Figure2(lib); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure3 regenerates the load-imbalance and multiprocessing
// curves on the heterogeneous cluster (Figure 3(a)+(b)).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx, err := experiments.NewPaperContext()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctx.Figure3a(); err != nil {
			b.Fatal(err)
		}
		if _, err := ctx.Figure3b(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates the Basic campaign's measurement-cost table.
func BenchmarkTable3(b *testing.B) {
	ctx, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.CostTableFor(measure.BasicCampaign()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6 regenerates the NL/NS measurement-cost tables.
func BenchmarkTable6(b *testing.B) {
	ctx, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.CostTableFor(measure.NLCampaign()); err != nil {
			b.Fatal(err)
		}
		if _, err := ctx.CostTableFor(measure.NSCampaign()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEvalTable(b *testing.B, model string) {
	ctx, bms := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.EvaluationTable(bms[model]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates the Basic-model evaluation (Table 4).
func BenchmarkTable4(b *testing.B) { benchEvalTable(b, "Basic") }

// BenchmarkTable7 regenerates the NL-model evaluation (Table 7).
func BenchmarkTable7(b *testing.B) { benchEvalTable(b, "NL") }

// BenchmarkTable9 regenerates the NS-model evaluation (Table 9).
func BenchmarkTable9(b *testing.B) { benchEvalTable(b, "NS") }

// BenchmarkFigure6And7 regenerates the Basic-model correlation scatters at
// N = 6400, raw and adjusted.
func BenchmarkFigure6And7(b *testing.B) {
	ctx, bms := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Correlation(bms["Basic"], 6400, false); err != nil {
			b.Fatal(err)
		}
		if _, err := ctx.Correlation(bms["Basic"], 6400, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8To15 regenerates the NL and NS correlation scatters.
func BenchmarkFigure8To15(b *testing.B) {
	ctx, bms := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, model := range []string{"NL", "NS"} {
			for _, n := range []int{1600, 6400} {
				for _, adjusted := range []bool{false, true} {
					if _, err := ctx.Correlation(bms[model], n, adjusted); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
}

// BenchmarkModelConstruction measures the fit itself (the paper reports
// 0.69 ms for 54 configurations on an Athlon XP).
func BenchmarkModelConstruction(b *testing.B) {
	_, bms := fixtures(b)
	samples := bms["Basic"].Result.Samples
	cl, err := hetmodel.NewPaperCluster()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hetmodel.BuildModels(cl, samples, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimation measures scoring all 62 evaluation configurations
// (the paper reports 35 ms for 62 configurations x 4 sizes).
func BenchmarkEstimation(b *testing.B) {
	_, bms := fixtures(b)
	candidates := experiments.EvalConfigs()
	models := bms["Basic"].Models
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{3200, 4800, 6400, 9600} {
			models.EstimateAll(candidates, n)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §6) ---

// BenchmarkOptimizerExhaustive measures the paper's every-configuration
// search.
func BenchmarkOptimizerExhaustive(b *testing.B) {
	_, bms := fixtures(b)
	candidates := experiments.EvalConfigs()
	models := bms["Basic"].Models
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := models.Optimize(candidates, 6400); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizerHeuristic measures the hill-climbing alternative
// (the paper's §5 future work).
func BenchmarkOptimizerHeuristic(b *testing.B) {
	_, bms := fixtures(b)
	space := cluster.PaperEvaluationSpace()
	models := bms["Basic"].Models
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := models.OptimizeHeuristic(space, 6400); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHPLPhantom measures a timing-only simulation of the paper's
// largest evaluation run.
func BenchmarkHPLPhantom(b *testing.B) {
	cl, err := hetmodel.NewPaperCluster()
	if err != nil {
		b.Fatal(err)
	}
	cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{PEs: 1, Procs: 4}, {PEs: 8, Procs: 1}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hetmodel.RunHPL(cl, cfg, hetmodel.HPLParams{N: 9600}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHPLNumeric measures a real-arithmetic run (small N; numeric mode
// exists for validation, not scale).
func BenchmarkHPLNumeric(b *testing.B) {
	cl, err := hetmodel.NewPaperCluster()
	if err != nil {
		b.Fatal(err)
	}
	cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{PEs: 1, Procs: 1}, {PEs: 3, Procs: 1}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hetmodel.RunHPL(cl, cfg, hetmodel.HPLParams{N: 192, NB: 32, Numeric: true, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Residual > 16 {
			b.Fatalf("residual %v", res.Residual)
		}
	}
}

// BenchmarkLSQHouseholder measures the production least-squares path.
func BenchmarkLSQHouseholder(b *testing.B) {
	x, y := lsqFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lsq.MultifitLinear(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSQNormalEquations measures the normal-equations alternative.
func BenchmarkLSQNormalEquations(b *testing.B) {
	x, y := lsqFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lsq.MultifitNormalEquations(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func lsqFixture() (*linalg.Matrix, []float64) {
	rng := rand.New(rand.NewSource(42))
	const rows, cols = 72, 4
	x := linalg.NewMatrix(rows, cols)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y[i] = rng.NormFloat64()
	}
	return x, y
}

// BenchmarkGEMMSerial and BenchmarkGEMMParallel compare the blocked kernel
// with its row-partitioned parallel variant.
func BenchmarkGEMMSerial(b *testing.B) {
	a, c, out := gemmFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := linalg.MulAdd(1, a, c, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGEMMParallel(b *testing.B) {
	a, c, out := gemmFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := linalg.ParallelMulAdd(1, a, c, out, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func gemmFixture() (*linalg.Matrix, *linalg.Matrix, *linalg.Matrix) {
	rng := rand.New(rand.NewSource(7))
	const n = 256
	a := linalg.NewMatrix(n, n)
	c := linalg.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
		c.Data[i] = rng.NormFloat64()
	}
	return a, c, linalg.NewMatrix(n, n)
}

// BenchmarkCholeskyPhantom measures the second application's timing walk
// (the paper's "other parallel applications" future work).
func BenchmarkCholeskyPhantom(b *testing.B) {
	cl, err := hetmodel.NewPaperCluster()
	if err != nil {
		b.Fatal(err)
	}
	cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{PEs: 1, Procs: 3}, {PEs: 8, Procs: 1}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chol.Run(cl, cfg, chol.Params{N: 6400}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCholeskyNumeric measures a real-arithmetic Cholesky run.
func BenchmarkCholeskyNumeric(b *testing.B) {
	cl, err := hetmodel.NewPaperCluster()
	if err != nil {
		b.Fatal(err)
	}
	cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{PEs: 1, Procs: 1}, {PEs: 3, Procs: 1}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := chol.Run(cl, cfg, chol.Params{N: 160, NB: 32, Numeric: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Residual > 16 {
			b.Fatalf("residual %v", res.Residual)
		}
	}
}

// BenchmarkFigureSVGs measures rendering all sixteen paper figures to SVG.
func BenchmarkFigureSVGs(b *testing.B) {
	ctx, _ := fixtures(b)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.WriteFigureSVGs(dir); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHPL2DPhantom measures the 2D-grid timing walk (real pivot
// communication on every panel column).
func BenchmarkHPL2DPhantom(b *testing.B) {
	cl, err := hetmodel.NewPaperCluster()
	if err != nil {
		b.Fatal(err)
	}
	cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{}, {PEs: 8, Procs: 1}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hpl2d.Run(cl, cfg, hpl2d.Params{Params: hetmodel.HPLParams{N: 4096}, Pr: 2, Pc: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHPL2DNumeric measures a real-arithmetic 2D run.
func BenchmarkHPL2DNumeric(b *testing.B) {
	cl, err := hetmodel.NewPaperCluster()
	if err != nil {
		b.Fatal(err)
	}
	cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{}, {PEs: 4, Procs: 1}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hpl2d.Run(cl, cfg, hpl2d.Params{
			Params: hetmodel.HPLParams{N: 128, NB: 16, Numeric: true, Seed: int64(i)},
			Pr:     2, Pc: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Residual > 16 {
			b.Fatalf("residual %v", res.Residual)
		}
	}
}

// --- Parallel execution engine benchmarks (internal/parallel) ---
//
// These measure the tentpole speedups: the model-construction campaign and
// the exhaustive candidate sweep fanned out over worker goroutines versus
// the sequential baseline. Run e.g.:
//
//	go test -bench 'Campaign|Sweep' -benchtime=2x .

// benchCampaign is the NL campaign restricted to its two smaller sizes so
// a benchmark iteration stays in the hundreds of milliseconds.
func benchCampaign(workers int) measure.Campaign {
	camp := measure.NLCampaign()
	camp.Ns = camp.Ns[:2]
	camp.Workers = workers
	return camp
}

func benchmarkCampaign(b *testing.B, workers int) {
	cl, err := hetmodel.NewPaperCluster()
	if err != nil {
		b.Fatal(err)
	}
	camp := benchCampaign(workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := measure.Run(cl, camp, hpl.Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignWorkers1(b *testing.B)   { benchmarkCampaign(b, 1) }
func BenchmarkCampaignWorkers2(b *testing.B)   { benchmarkCampaign(b, 2) }
func BenchmarkCampaignWorkers4(b *testing.B)   { benchmarkCampaign(b, 4) }
func BenchmarkCampaignWorkersMax(b *testing.B) { benchmarkCampaign(b, 0) }

// benchmarkSweep measures the hetopt -verify path: simulating all 62
// evaluation candidates at one size. Each iteration uses a fresh context so
// the memoized cache cannot hide the simulation cost.
func benchmarkSweep(b *testing.B, workers int) {
	candidates := experiments.EvalConfigs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctx, err := experiments.NewPaperContext()
		if err != nil {
			b.Fatal(err)
		}
		ctx.Workers = workers
		b.StartTimer()
		if _, _, err := ctx.ActualBest(candidates, 2400); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepWorkers1(b *testing.B)   { benchmarkSweep(b, 1) }
func BenchmarkSweepWorkers4(b *testing.B)   { benchmarkSweep(b, 4) }
func BenchmarkSweepWorkersMax(b *testing.B) { benchmarkSweep(b, 0) }

// BenchmarkEstimateAllWorkers measures the pure model-evaluation sweep
// (no simulation) at several worker counts.
func BenchmarkEstimateAllWorkers(b *testing.B) {
	_, bms := fixtures(b)
	candidates := experiments.EvalConfigs()
	models := bms["Basic"].Models
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				models.EstimateAllWorkers(candidates, 6400, workers)
			}
		})
	}
}
